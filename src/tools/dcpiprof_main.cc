// dcpiprof CLI: procedure/image listings from an on-disk profile database.
//
// Usage:
//   dcpiprof [-i] <db_root> <epoch> <image_file>...
//
// Each image_file is a serialized ExecutableImage (see dcpi_sim, which
// writes them next to the database). -i lists by image instead of by
// procedure.

#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/isa/image_io.h"
#include "src/profiledb/database.h"
#include "src/tools/dcpiprof.h"

int main(int argc, char** argv) {
  using namespace dcpi;
  bool by_image = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "-i") == 0) {
    by_image = true;
    ++arg;
  }
  if (argc - arg < 3) {
    std::fprintf(stderr, "usage: dcpiprof [-i] <db_root> <epoch> <image_file>...\n");
    return 2;
  }
  ProfileDatabase db(argv[arg]);
  uint32_t epoch = static_cast<uint32_t>(std::atoi(argv[arg + 1]));

  std::vector<ProfInput> inputs;
  std::deque<ImageProfile> profiles;  // stable storage for ProfInput pointers
  for (int i = arg + 2; i < argc; ++i) {
    Result<std::shared_ptr<ExecutableImage>> image = LoadImage(argv[i]);
    if (!image.ok()) {
      std::fprintf(stderr, "cannot load image %s: %s\n", argv[i],
                   image.status().ToString().c_str());
      return 1;
    }
    ProfInput input;
    input.image = image.value();
    Result<ImageProfile> cycles =
        db.ReadProfile(epoch, image.value()->name(), EventType::kCycles);
    if (!cycles.ok()) continue;  // image not profiled in this epoch
    profiles.push_back(std::move(cycles.value()));
    input.cycles = &profiles.back();
    Result<ImageProfile> imiss =
        db.ReadProfile(epoch, image.value()->name(), EventType::kImiss);
    if (imiss.ok()) {
      profiles.push_back(std::move(imiss.value()));
      input.secondary = &profiles.back();
    }
    inputs.push_back(input);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "no CYCLES profiles for the given images in epoch %u of %s\n",
                 epoch, argv[arg]);
    return 1;
  }
  if (by_image) {
    std::fputs(FormatImageListing(ListImages(inputs)).c_str(), stdout);
  } else {
    std::fputs(FormatProcedureListing(ListProcedures(inputs), "imiss").c_str(), stdout);
  }
  return 0;
}
