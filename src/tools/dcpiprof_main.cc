// dcpiprof CLI: procedure/image listings from an on-disk profile database.
//
// Usage:
//   dcpiprof [-i] [--jobs N] [--epoch N]... [--all-epochs]
//            <db_root> <image_file>...
//
// Each image_file is a serialized ExecutableImage (see dcpi_sim, which
// writes them next to the database). -i lists by image instead of by
// procedure. Epoch selection is shared with the other tools (toolkit.h):
// by default the latest sealed epoch is listed; --epoch N (repeatable)
// names epochs explicitly; --all-epochs merges every sealed epoch, which
// is safe to run while a daemon is still writing — the database is opened
// read-only and sealed epochs are immutable. Image and profile loads fan
// out over --jobs worker threads (default: hardware concurrency); the
// listing is assembled in input order, so output is byte-identical for any
// jobs count.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/support/thread_pool.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpiprof [-i] [--jobs N] [--epoch N]... [--all-epochs] "
               "<db_root> <image_file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  bool by_image = false;
  ToolOptions options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      if (std::strcmp(argv[arg], "-i") == 0) {
        by_image = true;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
        return 2;
      }
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  const std::string db_root = argv[arg];
  std::vector<std::string> image_paths(argv + arg + 1, argv + argc);

  Result<ToolContext> context = OpenToolDatabase(db_root, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<std::shared_ptr<ExecutableImage>>> images =
      LoadImageSet(image_paths, options.jobs);
  if (!images.ok()) {
    std::fprintf(stderr, "%s\n", images.status().ToString().c_str());
    return 1;
  }

  // One slot per image, profiles merged across the resolved epochs in
  // parallel and assembled in input order below (slots keep the profiles
  // at stable addresses).
  const ToolContext& ctx = context.value();
  struct Slot {
    std::optional<ImageProfile> cycles, secondary;
  };
  std::vector<Slot> slots(images.value().size());
  ThreadPool pool(options.jobs);
  pool.ParallelFor(slots.size(), [&](size_t i, int) {
    const auto& image = images.value()[i];
    Result<ImageProfile> cycles =
        ReadMergedProfile(*ctx.db, ctx.epochs, image->name(), EventType::kCycles);
    if (!cycles.ok()) return;  // image not profiled in these epochs
    slots[i].cycles = std::move(cycles).value();
    Result<ImageProfile> imiss =
        ReadMergedProfile(*ctx.db, ctx.epochs, image->name(), EventType::kImiss);
    if (imiss.ok()) slots[i].secondary = std::move(imiss).value();
  });

  std::vector<ProfInput> inputs;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].cycles.has_value()) continue;
    ProfInput input;
    input.image = images.value()[i];
    input.cycles = &*slots[i].cycles;
    if (slots[i].secondary.has_value()) input.secondary = &*slots[i].secondary;
    inputs.push_back(input);
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "no CYCLES profiles for the given images in the requested "
                 "epoch(s) of %s\n",
                 db_root.c_str());
    return 1;
  }
  if (by_image) {
    std::fputs(FormatImageListing(ListImages(inputs)).c_str(), stdout);
  } else {
    std::fputs(FormatProcedureListing(ListProcedures(inputs), "imiss").c_str(), stdout);
  }
  return 0;
}
