// dcpidiff: compares two profiles of the same program (Section 3 mentions
// a tool that "highlights the differences in two separate profiles for the
// same program"). Useful for before/after-optimization comparisons and for
// spotting behaviour shifts between epochs.

#ifndef SRC_TOOLS_DCPIDIFF_H_
#define SRC_TOOLS_DCPIDIFF_H_

#include <string>
#include <vector>

#include "src/tools/dcpiprof.h"

namespace dcpi {

struct DiffRow {
  std::string procedure;
  std::string image;
  uint64_t before_samples = 0;
  uint64_t after_samples = 0;
  double before_pct = 0;  // share of its own profile
  double after_pct = 0;
  double delta_pct = 0;  // after_pct - before_pct (percentage points)
};

// Joins two per-procedure listings; rows sorted by |delta| descending.
std::vector<DiffRow> DiffProcedures(const std::vector<ProcedureRow>& before,
                                    const std::vector<ProcedureRow>& after);

std::string FormatDiff(const std::vector<DiffRow>& rows, size_t max_rows = 0);

}  // namespace dcpi

#endif  // SRC_TOOLS_DCPIDIFF_H_
