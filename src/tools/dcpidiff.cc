#include "src/tools/dcpidiff.h"

#include <algorithm>
#include <tuple>
#include <cmath>
#include <map>

#include "src/support/text_table.h"

namespace dcpi {

std::vector<DiffRow> DiffProcedures(const std::vector<ProcedureRow>& before,
                                    const std::vector<ProcedureRow>& after) {
  std::map<std::pair<std::string, std::string>, DiffRow> rows;
  for (const ProcedureRow& row : before) {
    DiffRow& d = rows[{row.procedure, row.image}];
    d.procedure = row.procedure;
    d.image = row.image;
    d.before_samples = row.cycles_samples;
    d.before_pct = row.cycles_pct;
  }
  for (const ProcedureRow& row : after) {
    DiffRow& d = rows[{row.procedure, row.image}];
    d.procedure = row.procedure;
    d.image = row.image;
    d.after_samples = row.cycles_samples;
    d.after_pct = row.cycles_pct;
  }
  std::vector<DiffRow> sorted;
  for (auto& [key, row] : rows) {
    row.delta_pct = row.after_pct - row.before_pct;
    sorted.push_back(row);
  }
  std::sort(sorted.begin(), sorted.end(), [](const DiffRow& a, const DiffRow& b) {
    if (std::fabs(a.delta_pct) != std::fabs(b.delta_pct)) {
      return std::fabs(a.delta_pct) > std::fabs(b.delta_pct);
    }
    return std::tie(a.procedure, a.image) < std::tie(b.procedure, b.image);
  });
  return sorted;
}

std::string FormatDiff(const std::vector<DiffRow>& rows, size_t max_rows) {
  TextTable table;
  table.SetHeader({"delta", "before%", "after%", "before", "after", "procedure",
                   "image"});
  size_t limit = max_rows == 0 ? rows.size() : std::min(max_rows, rows.size());
  for (size_t i = 0; i < limit; ++i) {
    const DiffRow& row = rows[i];
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2fpp", row.delta_pct);
    table.AddRow({delta, TextTable::Percent(row.before_pct, 2),
                  TextTable::Percent(row.after_pct, 2),
                  std::to_string(row.before_samples), std::to_string(row.after_samples),
                  row.procedure, row.image});
  }
  return table.ToString();
}

}  // namespace dcpi
