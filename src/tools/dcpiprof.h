// dcpiprof: procedure- and image-level sample listings (Section 3.1).
//
// Reads per-(image, event) profiles, aggregates samples over procedure
// symbol ranges, and renders the Figure 1 style listing: samples, percent,
// cumulative percent, a secondary event column, procedure, and image.

#ifndef SRC_TOOLS_DCPIPROF_H_
#define SRC_TOOLS_DCPIPROF_H_

#include <memory>
#include <string>
#include <vector>

#include "src/isa/image.h"
#include "src/profiledb/profile.h"

namespace dcpi {

struct ProfInput {
  std::shared_ptr<const ExecutableImage> image;
  const ImageProfile* cycles = nullptr;     // required
  const ImageProfile* secondary = nullptr;  // e.g. IMISS; optional
};

struct ProcedureRow {
  std::string procedure;
  std::string image;
  uint64_t cycles_samples = 0;
  double cycles_pct = 0;
  double cumulative_pct = 0;
  uint64_t secondary_samples = 0;
  double secondary_pct = 0;
};

struct ImageRow {
  std::string image;
  uint64_t cycles_samples = 0;
  double cycles_pct = 0;
  double cumulative_pct = 0;
};

// Aggregates samples per procedure, sorted by decreasing samples.
// Samples falling outside any procedure symbol are aggregated under
// "<anonymous>" per image.
std::vector<ProcedureRow> ListProcedures(const std::vector<ProfInput>& inputs);

std::vector<ImageRow> ListImages(const std::vector<ProfInput>& inputs);

// Figure 1 style text rendering.
std::string FormatProcedureListing(const std::vector<ProcedureRow>& rows,
                                   const std::string& secondary_name,
                                   size_t max_rows = 0);

std::string FormatImageListing(const std::vector<ImageRow>& rows, size_t max_rows = 0);

// ---- Fleet-wide listings (dcpiprof --fleet) ----

// A fleet-wide procedure row: the usual aggregates over every host's
// samples, plus each host's own cycles contribution for the per-host
// breakdown column.
struct FleetProcedureRow {
  ProcedureRow fleet;
  std::vector<uint64_t> host_samples;  // cycles samples, fleet host order
};

// Aggregates procedures over `per_host` (one ProfInput set per host, in
// ascending fleet host order). Row ordering matches ListProcedures run on
// the concatenation of all hosts' inputs, so a 1-host fleet lists exactly
// what the plain listing would.
std::vector<FleetProcedureRow> ListFleetProcedures(
    const std::vector<std::vector<ProfInput>>& per_host);

// Procedure listing with a trailing by-host column ("12/0/7/3" = samples
// on host_0..host_3) and a legend line naming the hosts in column order.
std::string FormatFleetProcedureListing(const std::vector<FleetProcedureRow>& rows,
                                        const std::vector<std::string>& host_names,
                                        const std::string& secondary_name,
                                        size_t max_rows = 0);

}  // namespace dcpi

#endif  // SRC_TOOLS_DCPIPROF_H_
