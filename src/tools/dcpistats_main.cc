// dcpistats CLI: cross-run variance statistics. Each epoch of the profile
// database is one sample set (one run).
//
// Usage:
//   dcpistats <db_root> <epoch>... -- <image_file>...

#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/isa/image_io.h"
#include "src/profiledb/database.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/dcpistats.h"

int main(int argc, char** argv) {
  using namespace dcpi;
  std::vector<uint32_t> epochs;
  std::vector<std::string> image_paths;
  bool after_separator = false;
  if (argc < 5) {
    std::fprintf(stderr, "usage: dcpistats <db_root> <epoch>... -- <image_file>...\n");
    return 2;
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      after_separator = true;
      continue;
    }
    if (after_separator) {
      image_paths.push_back(argv[i]);
    } else {
      epochs.push_back(static_cast<uint32_t>(std::atoi(argv[i])));
    }
  }
  if (epochs.size() < 2 || image_paths.empty()) {
    std::fprintf(stderr, "need at least two epochs and one image\n");
    return 2;
  }

  ProfileDatabase db(argv[1]);
  const ScanReport& scan = db.scan_report();
  if (scan.files_checked > 0 || scan.files_quarantined > 0) {
    std::fprintf(stderr, "%s\n", scan.ToString().c_str());
  }
  std::vector<std::shared_ptr<ExecutableImage>> images;
  for (const std::string& path : image_paths) {
    Result<std::shared_ptr<ExecutableImage>> image = LoadImage(path);
    if (!image.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   image.status().ToString().c_str());
      return 1;
    }
    images.push_back(image.value());
  }

  std::vector<ProcedureSamples> sets;
  size_t profiles_read = 0;
  for (uint32_t epoch : epochs) {
    std::deque<ImageProfile> storage;
    std::vector<ProfInput> inputs;
    for (const auto& image : images) {
      Result<ImageProfile> cycles = db.ReadProfile(epoch, image->name(), EventType::kCycles);
      if (!cycles.ok()) continue;
      storage.push_back(std::move(cycles.value()));
      inputs.push_back({image, &storage.back(), nullptr});
      ++profiles_read;
    }
    ProcedureSamples samples;
    for (const ProcedureRow& row : ListProcedures(inputs)) {
      samples[row.procedure] += row.cycles_samples;
    }
    sets.push_back(std::move(samples));
  }
  if (profiles_read == 0) {
    std::fprintf(stderr, "no CYCLES profiles for the given images in any requested epoch of %s\n",
                 argv[1]);
    return 1;
  }
  std::fputs(FormatStats(sets, ComputeStats(sets)).c_str(), stdout);
  return 0;
}
