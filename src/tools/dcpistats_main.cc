// dcpistats CLI: cross-epoch variance statistics. Each epoch of the
// profile database is one sample set (one run, or one epoch of a
// continuous run).
//
// Usage:
//   dcpistats [--fleet] [--jobs N] [--epoch N]... [--all-epochs]
//             <db_root> <image_file>...
//
// With --fleet, <db_root> is a fleet root of host_<id> shards and each
// *host* is one sample set (folded across the resolved epochs), so the
// report shows cross-host variance — which procedures burn cycles
// uniformly across the fleet and which are outliers on a few machines.
// At least two hosts must be present.
//
// By default every sealed epoch is a sample set (a fresh batch database
// with no seals uses every epoch); --epoch N (repeatable) names epochs
// explicitly. At least two epochs must resolve. The recovery-scan summary
// plus per-epoch file/sample/seal details are printed to stderr, so an
// operator can watch a continuous run's pipeline progress. Profile reads
// fan out over --jobs worker threads (default: hardware concurrency);
// sample sets are assembled in epoch order, so output is byte-identical
// for any jobs count.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/support/thread_pool.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/dcpistats.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpistats [--fleet] [--jobs N] [--epoch N]... "
               "[--all-epochs] <db_root> <image_file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  ToolOptions options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  const std::string db_root = argv[arg];
  std::vector<std::string> image_paths(argv + arg + 1, argv + argc);

  // Statistics want every epoch by default, not just the latest.
  if (options.epochs.empty()) options.all_epochs = true;
  Result<ToolContext> context = OpenToolDatabase(db_root, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  const ToolContext& ctx = context.value();
  if (ctx.db != nullptr) {
    const ScanReport& scan = ctx.db->scan_report();
    if (scan.files_checked > 0 || scan.files_quarantined > 0) {
      std::fprintf(stderr, "%s\n%s", scan.ToString().c_str(),
                   scan.DetailString().c_str());
    }
  }
  // One sample set per epoch normally; one per host with --fleet.
  const bool fleet = ctx.fleet != nullptr;
  const size_t num_sets = fleet ? ctx.fleet->num_hosts() : ctx.epochs.size();
  if (num_sets < 2) {
    std::fprintf(stderr,
                 "dcpistats needs at least two %s to compare (resolved "
                 "%zu in %s)\n",
                 fleet ? "hosts" : "epochs", num_sets, db_root.c_str());
    return 1;
  }
  Result<std::vector<std::shared_ptr<ExecutableImage>>> images =
      LoadImageSet(image_paths, options.jobs);
  if (!images.ok()) {
    std::fprintf(stderr, "%s\n", images.status().ToString().c_str());
    return 1;
  }

  // Read every (set, image) CYCLES profile in parallel into a flat grid,
  // then fold into sample sets in order. A fleet cell folds one host
  // across every resolved epoch; a plain cell reads one epoch.
  const size_t num_images = images.value().size();
  std::vector<std::optional<ImageProfile>> grid(num_sets * num_images);
  ThreadPool pool(options.jobs);
  pool.ParallelFor(grid.size(), [&](size_t cell, int) {
    const auto& image = images.value()[cell % num_images];
    Result<ImageProfile> cycles =
        fleet ? ReadMergedProfile(ctx.fleet->host(cell / num_images), ctx.epochs,
                                  image->name(), EventType::kCycles)
              : ctx.db->ReadProfile(ctx.epochs[cell / num_images], image->name(),
                                    EventType::kCycles);
    if (cycles.ok()) grid[cell] = std::move(cycles).value();
  });

  std::vector<ProcedureSamples> sets;
  size_t profiles_read = 0;
  for (size_t e = 0; e < num_sets; ++e) {
    std::vector<ProfInput> inputs;
    for (size_t i = 0; i < num_images; ++i) {
      std::optional<ImageProfile>& cycles = grid[e * num_images + i];
      if (!cycles.has_value()) continue;
      inputs.push_back({images.value()[i], &*cycles, nullptr});
      ++profiles_read;
    }
    ProcedureSamples samples;
    for (const ProcedureRow& row : ListProcedures(inputs)) {
      samples[row.procedure] += row.cycles_samples;
    }
    sets.push_back(std::move(samples));
  }
  if (profiles_read == 0) {
    std::fprintf(stderr,
                 "no CYCLES profiles for the given images in any requested "
                 "epoch of %s\n",
                 db_root.c_str());
    return 1;
  }
  if (fleet) {
    std::fprintf(stdout, "fleet of %zu host(s), sample sets by host:", num_sets);
    for (const std::string& name : ctx.fleet->host_names()) {
      std::fprintf(stdout, " %s", name.c_str());
    }
    std::fprintf(stdout, "\n\n");
  }
  std::fputs(FormatStats(sets, ComputeStats(sets)).c_str(), stdout);
  return 0;
}
