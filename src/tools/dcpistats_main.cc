// dcpistats CLI: cross-run variance statistics. Each epoch of the profile
// database is one sample set (one run).
//
// Usage:
//   dcpistats [--jobs N] <db_root> <epoch>... -- <image_file>...
//
// Profile reads fan out over --jobs worker threads (default: hardware
// concurrency); sample sets are assembled in epoch order, so output is
// byte-identical for any jobs count.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/isa/image_io.h"
#include "src/profiledb/database.h"
#include "src/support/thread_pool.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/dcpistats.h"

int main(int argc, char** argv) {
  using namespace dcpi;
  int jobs = 0;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-' && std::strcmp(argv[arg], "--") != 0) {
    if (std::strcmp(argv[arg], "--jobs") == 0 && arg + 1 < argc) {
      jobs = std::atoi(argv[++arg]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  std::vector<uint32_t> epochs;
  std::vector<std::string> image_paths;
  bool after_separator = false;
  if (argc - arg < 4) {
    std::fprintf(stderr,
                 "usage: dcpistats [--jobs N] <db_root> <epoch>... -- "
                 "<image_file>...\n");
    return 2;
  }
  for (int i = arg + 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      after_separator = true;
      continue;
    }
    if (after_separator) {
      image_paths.push_back(argv[i]);
    } else {
      epochs.push_back(static_cast<uint32_t>(std::atoi(argv[i])));
    }
  }
  if (epochs.size() < 2 || image_paths.empty()) {
    std::fprintf(stderr, "need at least two epochs and one image\n");
    return 2;
  }

  ProfileDatabase db(argv[arg]);
  const ScanReport& scan = db.scan_report();
  if (scan.files_checked > 0 || scan.files_quarantined > 0) {
    std::fprintf(stderr, "%s\n", scan.ToString().c_str());
  }
  std::vector<std::shared_ptr<ExecutableImage>> images;
  for (const std::string& path : image_paths) {
    Result<std::shared_ptr<ExecutableImage>> image = LoadImage(path);
    if (!image.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   image.status().ToString().c_str());
      return 1;
    }
    images.push_back(image.value());
  }

  // Read every (epoch, image) CYCLES profile in parallel into a flat grid,
  // then fold into per-epoch sample sets in order.
  std::vector<std::optional<ImageProfile>> grid(epochs.size() * images.size());
  ThreadPool pool(jobs);
  pool.ParallelFor(grid.size(), [&](size_t cell, int) {
    uint32_t epoch = epochs[cell / images.size()];
    const auto& image = images[cell % images.size()];
    Result<ImageProfile> cycles = db.ReadProfile(epoch, image->name(), EventType::kCycles);
    if (cycles.ok()) grid[cell] = std::move(cycles.value());
  });

  std::vector<ProcedureSamples> sets;
  size_t profiles_read = 0;
  for (size_t e = 0; e < epochs.size(); ++e) {
    std::vector<ProfInput> inputs;
    for (size_t i = 0; i < images.size(); ++i) {
      std::optional<ImageProfile>& cycles = grid[e * images.size() + i];
      if (!cycles.has_value()) continue;
      inputs.push_back({images[i], &*cycles, nullptr});
      ++profiles_read;
    }
    ProcedureSamples samples;
    for (const ProcedureRow& row : ListProcedures(inputs)) {
      samples[row.procedure] += row.cycles_samples;
    }
    sets.push_back(std::move(samples));
  }
  if (profiles_read == 0) {
    std::fprintf(stderr, "no CYCLES profiles for the given images in any requested epoch of %s\n",
                 argv[arg]);
    return 1;
  }
  std::fputs(FormatStats(sets, ComputeStats(sets)).c_str(), stdout);
  return 0;
}
