#include "src/tools/toolkit.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "src/check/selfcheck.h"
#include "src/isa/image_io.h"
#include "src/support/thread_pool.h"

namespace dcpi {

bool ParseUint32(const char* s, uint32_t* out) {
  if (*s == '\0') return false;
  uint64_t value = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    value = value * 10 + static_cast<uint64_t>(*p - '0');
    if (value > UINT32_MAX) return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

int ParseToolFlag(int argc, char** argv, int* arg, ToolOptions* options) {
  const char* flag = argv[*arg];
  if (std::strcmp(flag, "--all-epochs") == 0) {
    options->all_epochs = true;
    return 1;
  }
  if (std::strcmp(flag, "--no-cache") == 0) {
    options->use_cache = false;
    return 1;
  }
  if (std::strcmp(flag, "--fleet") == 0) {
    options->fleet = true;
    return 1;
  }
  if (std::strcmp(flag, "--jobs") == 0) {
    if (*arg + 1 >= argc) return -1;
    uint32_t jobs = 0;
    if (!ParseUint32(argv[++*arg], &jobs)) return -1;
    options->jobs = static_cast<int>(jobs);
    return 1;
  }
  if (std::strcmp(flag, "--epoch") == 0) {
    if (*arg + 1 >= argc) return -1;
    uint32_t epoch = 0;
    if (!ParseUint32(argv[++*arg], &epoch)) return -1;
    options->epochs.push_back(epoch);
    return 1;
  }
  return 0;
}

Result<ToolContext> OpenToolDatabase(const std::string& db_root,
                                     const ToolOptions& options) {
  ToolContext context;
  if (options.fleet) {
    context.fleet = std::make_unique<FleetView>(db_root);
    if (context.fleet->num_hosts() == 0) {
      return NotFound("no host_<id> shards under fleet root " + db_root);
    }
  } else {
    context.db = std::make_unique<ProfileDatabase>(db_root, DbOpenMode::kReadOnly);
  }
  if (!options.epochs.empty()) {
    context.epochs = options.epochs;
    std::sort(context.epochs.begin(), context.epochs.end());
    context.epochs.erase(
        std::unique(context.epochs.begin(), context.epochs.end()),
        context.epochs.end());
    return context;
  }
  std::vector<uint32_t> pool = context.fleet != nullptr
                                   ? context.fleet->ListSealedEpochs()
                                   : context.db->ListSealedEpochs();
  if (pool.empty()) {
    pool = context.fleet != nullptr ? context.fleet->ListEpochs()
                                    : context.db->ListEpochs();
  }
  if (pool.empty()) {
    return NotFound("no epochs in profile database " + db_root);
  }
  if (options.all_epochs) {
    context.epochs = std::move(pool);
  } else {
    context.epochs = {pool.back()};
  }
  return context;
}

Result<std::vector<std::shared_ptr<ExecutableImage>>> LoadImageSet(
    const std::vector<std::string>& paths, int jobs) {
  std::vector<Result<std::shared_ptr<ExecutableImage>>> loads(
      paths.size(), Status(StatusCode::kInternal, "not loaded"));
  ThreadPool pool(jobs);
  pool.ParallelFor(paths.size(),
                   [&](size_t i, int) { loads[i] = LoadImage(paths[i]); });
  std::vector<std::shared_ptr<ExecutableImage>> images;
  images.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!loads[i].ok()) {
      return Status(loads[i].status().code(),
                    "cannot load image " + paths[i] + ": " +
                        loads[i].status().message());
    }
    images.push_back(loads[i].value());
  }
  return images;
}

Result<ImageProfile> ReadMergedProfile(const ProfileDatabase& db,
                                       const std::vector<uint32_t>& epochs,
                                       const std::string& image_name,
                                       EventType event) {
  Result<ImageProfile> merged = NotFound(
      "no " + std::string(EventTypeName(event)) + " profile for " + image_name);
  for (uint32_t epoch : epochs) {
    Result<ImageProfile> profile = db.ReadProfile(epoch, image_name, event);
    if (!profile.ok()) continue;
    if (merged.ok()) {
      merged.value().Merge(profile.value());
    } else {
      merged = std::move(profile).value();
    }
  }
  return merged;
}

Result<ImageProfile> ReadMergedProfile(const ToolContext& context,
                                       const std::string& image_name,
                                       EventType event) {
  if (context.fleet != nullptr) {
    return context.fleet->ReadProfile(context.epochs, image_name, event);
  }
  return ReadMergedProfile(*context.db, context.epochs, image_name, event);
}

std::vector<ProfInput> GatherProfInputs(System& system, EventType secondary) {
  std::vector<ProfInput> inputs;
  if (system.daemon() == nullptr) return inputs;
  for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
    ProfInput input;
    input.image = truth.image;
    input.cycles = system.daemon()->FindProfile(truth.image->name(), EventType::kCycles);
    input.secondary = system.daemon()->FindProfile(truth.image->name(), secondary);
    if (input.cycles != nullptr) inputs.push_back(input);
  }
  return inputs;
}

ProcedureSamples SamplesByProcedure(System& system) {
  ProcedureSamples samples;
  for (const ProcedureRow& row : ListProcedures(GatherProfInputs(system))) {
    samples[row.procedure] += row.cycles_samples;
  }
  return samples;
}

Result<ProcedureAnalysis> AnalyzeFromSystem(System& system, const ExecutableImage& image,
                                            const std::string& proc_name,
                                            const AnalysisConfig& config) {
  if (system.daemon() == nullptr) {
    return FailedPrecondition("system has no profiling daemon (base mode?)");
  }
  const ProcedureSymbol* proc = image.FindProcedureByName(proc_name);
  if (proc == nullptr) {
    return NotFound("procedure " + proc_name + " in " + image.name());
  }
  const ImageProfile* cycles =
      system.daemon()->FindProfile(image.name(), EventType::kCycles);
  if (cycles == nullptr) {
    return NotFound("no CYCLES profile for " + image.name());
  }
  return AnalyzeProcedureChecked(
      image, *proc, *cycles,
      system.daemon()->FindProfile(image.name(), EventType::kImiss),
      system.daemon()->FindProfile(image.name(), EventType::kDmiss),
      system.daemon()->FindProfile(image.name(), EventType::kBranchMp),
      system.daemon()->FindProfile(image.name(), EventType::kDtbMiss), config);
}

}  // namespace dcpi
