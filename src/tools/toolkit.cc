#include "src/tools/toolkit.h"

#include "src/check/selfcheck.h"

namespace dcpi {

std::vector<ProfInput> GatherProfInputs(System& system, EventType secondary) {
  std::vector<ProfInput> inputs;
  if (system.daemon() == nullptr) return inputs;
  for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
    ProfInput input;
    input.image = truth.image;
    input.cycles = system.daemon()->FindProfile(truth.image->name(), EventType::kCycles);
    input.secondary = system.daemon()->FindProfile(truth.image->name(), secondary);
    if (input.cycles != nullptr) inputs.push_back(input);
  }
  return inputs;
}

ProcedureSamples SamplesByProcedure(System& system) {
  ProcedureSamples samples;
  for (const ProcedureRow& row : ListProcedures(GatherProfInputs(system))) {
    samples[row.procedure] += row.cycles_samples;
  }
  return samples;
}

Result<ProcedureAnalysis> AnalyzeFromSystem(System& system, const ExecutableImage& image,
                                            const std::string& proc_name,
                                            const AnalysisConfig& config) {
  if (system.daemon() == nullptr) {
    return FailedPrecondition("system has no profiling daemon (base mode?)");
  }
  const ProcedureSymbol* proc = image.FindProcedureByName(proc_name);
  if (proc == nullptr) {
    return NotFound("procedure " + proc_name + " in " + image.name());
  }
  const ImageProfile* cycles =
      system.daemon()->FindProfile(image.name(), EventType::kCycles);
  if (cycles == nullptr) {
    return NotFound("no CYCLES profile for " + image.name());
  }
  return AnalyzeProcedureChecked(
      image, *proc, *cycles,
      system.daemon()->FindProfile(image.name(), EventType::kImiss),
      system.daemon()->FindProfile(image.name(), EventType::kDmiss),
      system.daemon()->FindProfile(image.name(), EventType::kBranchMp),
      system.daemon()->FindProfile(image.name(), EventType::kDtbMiss), config);
}

}  // namespace dcpi
