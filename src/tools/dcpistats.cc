#include "src/tools/dcpistats.h"

#include <algorithm>
#include <set>

#include "src/support/text_table.h"

namespace dcpi {

std::vector<StatsRow> ComputeStats(const std::vector<ProcedureSamples>& runs) {
  std::set<std::string> procedures;
  for (const ProcedureSamples& run : runs) {
    for (const auto& [proc, count] : run) procedures.insert(proc);
  }
  double grand_total = 0;
  for (const ProcedureSamples& run : runs) {
    for (const auto& [proc, count] : run) grand_total += static_cast<double>(count);
  }

  std::vector<StatsRow> rows;
  for (const std::string& proc : procedures) {
    RunningStat stat;
    for (const ProcedureSamples& run : runs) {
      auto it = run.find(proc);
      stat.Add(it == run.end() ? 0.0 : static_cast<double>(it->second));
    }
    StatsRow row;
    row.procedure = proc;
    row.sum = stat.sum();
    row.sum_pct = grand_total > 0 ? 100.0 * stat.sum() / grand_total : 0;
    row.runs = stat.count();
    row.mean = stat.mean();
    row.stddev = stat.stddev();
    row.min = stat.min();
    row.max = stat.max();
    row.range_pct = stat.sum() > 0 ? 100.0 * (stat.max() - stat.min()) / stat.sum() : 0;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const StatsRow& a, const StatsRow& b) { return a.range_pct > b.range_pct; });
  return rows;
}

std::string FormatStats(const std::vector<ProcedureSamples>& runs,
                        const std::vector<StatsRow>& rows, size_t max_rows) {
  std::string out = "Number of samples of type cycles\n";
  uint64_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    uint64_t set_total = 0;
    for (const auto& [proc, count] : runs[i]) set_total += count;
    out += "set " + std::to_string(i + 1) + " = " + std::to_string(set_total) + "  ";
    if ((i + 1) % 4 == 0) out += "\n";
    total += set_total;
  }
  out += "\nTOTAL " + std::to_string(total) + "\n\n";
  out += "Statistics calculated using the sample counts for each procedure from " +
         std::to_string(runs.size()) + " different sample set(s)\n\n";

  TextTable table;
  table.SetHeader({"range%", "sum", "sum%", "N", "mean", "std-dev", "min", "max",
                   "procedure"});
  size_t limit = max_rows == 0 ? rows.size() : std::min(max_rows, rows.size());
  for (size_t i = 0; i < limit; ++i) {
    const StatsRow& row = rows[i];
    table.AddRow({TextTable::Percent(row.range_pct, 2), TextTable::Fixed(row.sum, 2),
                  TextTable::Percent(row.sum_pct, 2), std::to_string(row.runs),
                  TextTable::Fixed(row.mean, 2), TextTable::Fixed(row.stddev, 2),
                  TextTable::Fixed(row.min, 2), TextTable::Fixed(row.max, 2),
                  row.procedure});
  }
  return out + table.ToString();
}

}  // namespace dcpi
