// dcpimem CLI: memory-centric analysis of a profile database.
//
// Usage:
//   dcpimem [--fleet] [--jobs N] [--no-cache] [--epoch N]... [--all-epochs]
//           [--top N] <db_root> <image_file>...
//
// Reads the wide-sample data-line axis (databases written with dcpi_sim
// --mem-fraction > 0) and prints the hottest data cache lines, per-data-
// object attribution, and false-sharing suspects. Epoch selection and
// --fleet behave exactly like the other reader tools (toolkit.h). Exits 1
// when the selected epochs hold no memory samples for the given images —
// a database collected without memory sampling is not an analysis result.

#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/tools/dcpimem.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpimem [--fleet] [--jobs N] [--no-cache] [--epoch N]... "
               "[--all-epochs] [--top N] <db_root> <image_file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  ToolOptions options;
  uint32_t top_n = 20;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      if (std::strcmp(argv[arg], "--top") == 0 && arg + 1 < argc) {
        if (!ParseUint32(argv[++arg], &top_n) || top_n == 0) return Usage();
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
        return 2;
      }
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  const std::string db_root = argv[arg];

  Result<ToolContext> context = OpenToolDatabase(db_root, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  const ToolContext& ctx = context.value();

  std::vector<std::string> image_paths;
  for (int i = arg + 1; i < argc; ++i) image_paths.push_back(argv[i]);
  Result<std::vector<std::shared_ptr<ExecutableImage>>> images =
      LoadImageSet(image_paths, options.jobs);
  if (!images.ok()) {
    std::fprintf(stderr, "%s\n", images.status().ToString().c_str());
    return 1;
  }

  // Wide records are tagged with whichever event sampled them, so fold the
  // memory axes of every event's profile per image.
  std::deque<ImageProfile> storage;
  std::vector<MemInput> inputs;
  for (const std::shared_ptr<ExecutableImage>& image : images.value()) {
    for (int e = 0; e < kNumEventTypes; ++e) {
      Result<ImageProfile> profile =
          ReadMergedProfile(ctx, image->name(), static_cast<EventType>(e));
      if (!profile.ok() || profile.value().mem().empty()) continue;
      storage.push_back(std::move(profile.value()));
      inputs.push_back({image, &storage.back()});
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "no memory samples for the given image(s) in %s "
                 "(collect with dcpi_sim --mem-fraction > 0)\n",
                 db_root.c_str());
    return 1;
  }

  MemReport report = BuildMemReport(inputs, top_n);
  std::fputs(FormatMemReport(report).c_str(), stdout);
  return 0;
}
