// dcpicalc CLI: instruction-level analysis of one procedure.
//
// Usage:
//   dcpicalc [-s] [--selfcheck] [--jobs N] [--no-cache] <db_root> <epoch>
//            <image_file> <procedure>
//
// Prints the Figure 2 style annotated listing; -s prints the Figure 4
// style stall summary instead. --selfcheck additionally runs the src/check
// verification passes over the analysis and fails (exit 1) on violations.
// The analysis runs through the AnalysisEngine: results are cached under
// <db_root>/epoch_<N>/.cache (content-addressed; --no-cache disables) and
// --jobs sizes the worker pool shared with the other tools.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/analysis/engine.h"
#include "src/check/selfcheck.h"
#include "src/isa/image_io.h"
#include "src/profiledb/database.h"
#include "src/tools/dcpicalc.h"

int main(int argc, char** argv) {
  using namespace dcpi;
  bool summary = false;
  bool selfcheck = false;
  bool use_cache = true;
  int jobs = 0;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "-s") == 0) {
      summary = true;
    } else if (std::strcmp(argv[arg], "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strcmp(argv[arg], "--jobs") == 0 && arg + 1 < argc) {
      jobs = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--no-cache") == 0) {
      use_cache = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 4) {
    std::fprintf(stderr,
                 "usage: dcpicalc [-s] [--selfcheck] [--jobs N] [--no-cache] "
                 "<db_root> <epoch> <image_file> <procedure>\n");
    return 2;
  }
  ProfileDatabase db(argv[arg]);
  uint32_t epoch = static_cast<uint32_t>(std::atoi(argv[arg + 1]));
  Result<std::shared_ptr<ExecutableImage>> image = LoadImage(argv[arg + 2]);
  if (!image.ok()) {
    std::fprintf(stderr, "cannot load image: %s\n", image.status().ToString().c_str());
    return 1;
  }
  const ProcedureSymbol* proc = image.value()->FindProcedureByName(argv[arg + 3]);
  if (proc == nullptr) {
    std::fprintf(stderr, "no procedure %s in %s\n", argv[arg + 3],
                 image.value()->name().c_str());
    return 1;
  }
  Result<ImageProfile> cycles =
      db.ReadProfile(epoch, image.value()->name(), EventType::kCycles);
  if (!cycles.ok()) {
    std::fprintf(stderr, "no cycles profile: %s\n", cycles.status().ToString().c_str());
    return 1;
  }
  std::optional<ImageProfile> imiss;
  Result<ImageProfile> imiss_result =
      db.ReadProfile(epoch, image.value()->name(), EventType::kImiss);
  if (imiss_result.ok()) imiss = std::move(imiss_result.value());

  AnalysisConfig config;
  config.selfcheck = selfcheck;

  EngineOptions engine_options;
  engine_options.jobs = jobs;
  if (use_cache) {
    engine_options.cache_dir =
        std::string(argv[arg]) + "/epoch_" + std::to_string(epoch) + "/.cache";
  }
  engine_options.analyze =
      [](const ExecutableImage& img, const ProcedureSymbol& p,
         const ImageProfile& cyc, const ImageProfile* im, const ImageProfile* dm,
         const ImageProfile* br, const ImageProfile* dtb,
         const AnalysisConfig& cfg, AnalysisScratch* scratch) {
        return AnalyzeProcedureChecked(img, p, cyc, im, dm, br, dtb, cfg, scratch);
      };
  AnalysisEngine engine(std::move(engine_options));

  AnalysisInput input;
  input.image = image.value();
  input.cycles = &cycles.value();
  if (imiss.has_value()) input.imiss = &*imiss;
  ProcedureResult result = engine.AnalyzeOne(input, *proc, config);
  if (!result.status.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  const ProcedureAnalysis& analysis = result.analysis;
  if (summary) {
    std::fputs(FormatStallSummary(analysis).c_str(), stdout);
  } else {
    std::fputs(FormatCalcListing(*image.value(), analysis).c_str(), stdout);
  }
  if (selfcheck) {
    const CheckReport& report = analysis.selfcheck_report;
    if (!report.empty()) std::fputs(report.ToString().c_str(), stderr);
    if (!report.ok()) return 1;
  }
  return 0;
}
