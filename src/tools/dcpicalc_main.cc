// dcpicalc CLI: instruction-level analysis of one procedure.
//
// Usage:
//   dcpicalc [-s] [--selfcheck] [--fleet] [--jobs N] [--no-cache]
//            [--epoch N]... [--all-epochs] <db_root> <image_file> <procedure>
//
// With --fleet, <db_root> is a fleet root of host_<id> shards and the
// analyzed profile is the fleet-wide merge-on-read aggregate (cached under
// <fleet_root>/.cache).
//
// Prints the Figure 2 style annotated listing; -s prints the Figure 4
// style stall summary instead. --selfcheck additionally runs the src/check
// verification passes over the analysis and fails (exit 1) on violations.
// Epoch selection is shared with the other tools (toolkit.h): the default
// is the latest sealed epoch; with several epochs the profiles are merged
// before analysis. The analysis runs through the AnalysisEngine: results
// are cached content-addressed under <db_root>/epoch_<N>/.cache for a
// single epoch (or <db_root>/.cache for a merged set; --no-cache
// disables), and --jobs sizes the worker pool shared with the other tools.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/analysis/engine.h"
#include "src/check/selfcheck.h"
#include "src/tools/dcpicalc.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpicalc [-s] [--selfcheck] [--fleet] [--jobs N] "
               "[--no-cache] [--epoch N]... [--all-epochs] <db_root> "
               "<image_file> <procedure>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  bool summary = false;
  bool selfcheck = false;
  ToolOptions options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      if (std::strcmp(argv[arg], "-s") == 0) {
        summary = true;
      } else if (std::strcmp(argv[arg], "--selfcheck") == 0) {
        selfcheck = true;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
        return 2;
      }
    }
    ++arg;
  }
  if (argc - arg < 3) return Usage();
  const std::string db_root = argv[arg];

  Result<ToolContext> context = OpenToolDatabase(db_root, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  const ToolContext& ctx = context.value();
  Result<std::vector<std::shared_ptr<ExecutableImage>>> images =
      LoadImageSet({argv[arg + 1]}, options.jobs);
  if (!images.ok()) {
    std::fprintf(stderr, "%s\n", images.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<ExecutableImage>& image = images.value()[0];
  const ProcedureSymbol* proc = image->FindProcedureByName(argv[arg + 2]);
  if (proc == nullptr) {
    std::fprintf(stderr, "no procedure %s in %s\n", argv[arg + 2],
                 image->name().c_str());
    return 1;
  }
  Result<ImageProfile> cycles =
      ReadMergedProfile(ctx, image->name(), EventType::kCycles);
  if (!cycles.ok()) {
    std::fprintf(stderr, "no cycles profile: %s\n", cycles.status().ToString().c_str());
    return 1;
  }
  std::optional<ImageProfile> imiss;
  Result<ImageProfile> imiss_result =
      ReadMergedProfile(ctx, image->name(), EventType::kImiss);
  if (imiss_result.ok()) imiss = std::move(imiss_result).value();

  AnalysisConfig config;
  config.selfcheck = selfcheck;

  EngineOptions engine_options;
  engine_options.jobs = options.jobs;
  if (options.use_cache) {
    // A merged profile set gets its own cache namespace at the database
    // root (fleet merges always do — their profiles span hosts); the
    // content-addressed keys keep it disjoint per epoch set.
    engine_options.cache_dir = ctx.db != nullptr && ctx.epochs.size() == 1
                                   ? ctx.db->EpochCacheDir(ctx.epochs[0])
                                   : db_root + "/.cache";
  }
  engine_options.analyze =
      [](const ExecutableImage& img, const ProcedureSymbol& p,
         const ImageProfile& cyc, const ImageProfile* im, const ImageProfile* dm,
         const ImageProfile* br, const ImageProfile* dtb,
         const AnalysisConfig& cfg, AnalysisScratch* scratch) {
        return AnalyzeProcedureChecked(img, p, cyc, im, dm, br, dtb, cfg, scratch);
      };
  AnalysisEngine engine(std::move(engine_options));

  AnalysisInput input;
  input.image = image;
  input.cycles = &cycles.value();
  if (imiss.has_value()) input.imiss = &*imiss;
  ProcedureResult result = engine.AnalyzeOne(input, *proc, config);
  if (!result.status.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  const ProcedureAnalysis& analysis = result.analysis;
  if (summary) {
    std::fputs(FormatStallSummary(analysis).c_str(), stdout);
  } else {
    std::fputs(FormatCalcListing(*image, analysis).c_str(), stdout);
  }
  if (selfcheck) {
    const CheckReport& report = analysis.selfcheck_report;
    if (!report.empty()) std::fputs(report.ToString().c_str(), stderr);
    if (!report.ok()) return 1;
  }
  return 0;
}
