// dcpiannotate CLI: annotates the assembly source an image was built from
// with per-line CYCLES sample counts (the paper's source-annotation tool).
//
// Usage:
//   dcpiannotate [--fleet] [--jobs N] [--no-cache] [--epoch N]...
//                [--all-epochs] <db_root> <image_file> <source_file>
//
// Epoch selection and --fleet behave exactly like the other reader tools
// (toolkit.h): default is the latest sealed epoch, several epochs merge
// before annotation, and --fleet merges across host_<id> shards on read.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/tools/dcpiannotate.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpiannotate [--fleet] [--jobs N] [--no-cache] "
               "[--epoch N]... [--all-epochs] <db_root> <image_file> "
               "<source_file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  ToolOptions options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 3) return Usage();
  const std::string db_root = argv[arg];

  Result<ToolContext> context = OpenToolDatabase(db_root, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  const ToolContext& ctx = context.value();

  Result<std::vector<std::shared_ptr<ExecutableImage>>> images =
      LoadImageSet({argv[arg + 1]}, options.jobs);
  if (!images.ok()) {
    std::fprintf(stderr, "%s\n", images.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<ExecutableImage>& image = images.value()[0];

  std::ifstream source_file(argv[arg + 2]);
  if (!source_file) {
    std::fprintf(stderr, "cannot read source file %s\n", argv[arg + 2]);
    return 1;
  }
  std::ostringstream source;
  source << source_file.rdbuf();

  Result<ImageProfile> cycles =
      ReadMergedProfile(ctx, image->name(), EventType::kCycles);
  if (!cycles.ok()) {
    std::fprintf(stderr, "no cycles profile: %s\n",
                 cycles.status().ToString().c_str());
    return 1;
  }
  std::fputs(FormatAnnotatedSource(*image, source.str(), cycles.value()).c_str(),
             stdout);
  return 0;
}
