// dcpicalc: instruction-level listings with stall bubbles (Section 3.2) and
// per-procedure stall summaries (Figure 4).

#ifndef SRC_TOOLS_DCPICALC_H_
#define SRC_TOOLS_DCPICALC_H_

#include <string>

#include "src/analysis/analyzer.h"

namespace dcpi {

// Figure 2 style annotated listing: best-case/actual CPI header, one line
// per instruction (address, disassembly, samples, average CPI, culprit
// addresses), with bubble lines naming possible causes before stalled
// instructions. Letters: d=D-cache, w=write buffer, D=DTB, p=branch
// mispredict, i=I-cache, t=ITB, m=IMUL busy, f=FDIV busy, y=sync,
// s=slotting, a/b/c=Ra/Rb/Rc dependency, u=FU dependency.
std::string FormatCalcListing(const ExecutableImage& image,
                              const ProcedureAnalysis& analysis);

// Figure 4 style summary: per-cause percentage ranges, static subtotals,
// execution percentage, and the tally line.
std::string FormatStallSummary(const ProcedureAnalysis& analysis);

}  // namespace dcpi

#endif  // SRC_TOOLS_DCPICALC_H_
