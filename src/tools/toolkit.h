// Convenience glue used by the CLI tools, examples, and benchmarks:
// gathering profile inputs from a live System, and running the full
// analyzer on a procedure with whatever event profiles are available.

#ifndef SRC_TOOLS_TOOLKIT_H_
#define SRC_TOOLS_TOOLKIT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/sim/system.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/dcpistats.h"

namespace dcpi {

// Builds dcpiprof inputs for every image known to the kernel (including
// /vmunix) that has a CYCLES profile in the daemon.
std::vector<ProfInput> GatherProfInputs(System& system,
                                        EventType secondary = EventType::kImiss);

// Per-procedure CYCLES sample map (dcpistats input) for one run.
ProcedureSamples SamplesByProcedure(System& system);

// Runs the analyzer on `proc_name` in `image`, pulling the CYCLES profile
// and any monitored event profiles from the system's daemon.
Result<ProcedureAnalysis> AnalyzeFromSystem(System& system, const ExecutableImage& image,
                                            const std::string& proc_name,
                                            const AnalysisConfig& config = AnalysisConfig());

}  // namespace dcpi

#endif  // SRC_TOOLS_TOOLKIT_H_
