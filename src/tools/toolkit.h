// Convenience glue used by the CLI tools, examples, and benchmarks:
// the shared CLI scaffolding (flag parsing, read-only database opening,
// epoch resolution, parallel image loading, cross-epoch profile merging),
// gathering profile inputs from a live System, and running the full
// analyzer on a procedure with whatever event profiles are available.

#ifndef SRC_TOOLS_TOOLKIT_H_
#define SRC_TOOLS_TOOLKIT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/profiledb/fleet.h"
#include "src/sim/system.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/dcpistats.h"

namespace dcpi {

// ---- Shared CLI scaffolding ----
//
// Every database-reading tool (dcpiprof, dcpicalc, dcpistats, dcpicheck)
// accepts the same epoch-selection and execution flags:
//   --epoch N      analyze epoch N (repeatable; replaces the old
//                  positional-epoch argument)
//   --all-epochs   analyze every sealed epoch (every epoch if none is
//                  sealed yet)
//   --jobs N       worker threads (default: hardware concurrency)
//   --no-cache     disable the content-addressed analysis result cache
//   --fleet        treat the database path as a fleet root of host_<id>
//                  shards and merge across hosts on read
// With no epoch flag, a tool reads the latest sealed epoch (or the latest
// epoch of a fresh batch database). Databases are opened read-only, so a
// tool can run concurrently against a database a daemon is still writing.

struct ToolOptions {
  int jobs = 0;
  bool use_cache = true;
  bool all_epochs = false;
  bool fleet = false;
  std::vector<uint32_t> epochs;  // explicit --epoch values, as given
};

// Parses the shared flag at argv[*arg] into `options`, advancing *arg past
// any consumed value. Returns 1 if the flag was consumed, 0 if it is not a
// shared flag (the tool handles it or rejects it), -1 if it is a shared
// flag with a missing or malformed value (print usage, exit 2).
int ParseToolFlag(int argc, char** argv, int* arg, ToolOptions* options);

// Strictly numeric uint32 parse for CLI values: every character must be a
// digit and the value must fit ("2x", "", "-1", and overflow all fail).
// Tool mains use this instead of atoi so a typo exits 2 with usage instead
// of silently running with a half-parsed number.
bool ParseUint32(const char* s, uint32_t* out);

struct ToolContext {
  // Exactly one of these is set: `db` for a single-host database, `fleet`
  // for a --fleet open over host_<id> shards (all opened kReadOnly).
  std::unique_ptr<ProfileDatabase> db;
  std::unique_ptr<FleetView> fleet;
  std::vector<uint32_t> epochs;  // resolved, ascending, deduplicated
};

// Opens the database read-only and resolves the epoch set per the rules
// above. Explicit --epoch values pass through even when the epoch does not
// exist (the missing profiles surface downstream); otherwise an empty
// database is an error. With options.fleet, `db_root` must contain at
// least one host_<id> shard and the epoch pool is the fleet-wide union.
Result<ToolContext> OpenToolDatabase(const std::string& db_root,
                                     const ToolOptions& options);

// Loads every image file in parallel (input order preserved); the first
// unreadable file fails the whole set.
Result<std::vector<std::shared_ptr<ExecutableImage>>> LoadImageSet(
    const std::vector<std::string>& paths, int jobs);

// Reads and merges one (image, event) profile across `epochs` (ascending
// merge order, so the result is deterministic). NotFound if no epoch has
// the profile.
Result<ImageProfile> ReadMergedProfile(const ProfileDatabase& db,
                                       const std::vector<uint32_t>& epochs,
                                       const std::string& image_name,
                                       EventType event);

// Same through a ToolContext: dispatches to the single database or the
// fleet merge-on-read path, whichever the context holds.
Result<ImageProfile> ReadMergedProfile(const ToolContext& context,
                                       const std::string& image_name,
                                       EventType event);

// Builds dcpiprof inputs for every image known to the kernel (including
// /vmunix) that has a CYCLES profile in the daemon.
std::vector<ProfInput> GatherProfInputs(System& system,
                                        EventType secondary = EventType::kImiss);

// Per-procedure CYCLES sample map (dcpistats input) for one run.
ProcedureSamples SamplesByProcedure(System& system);

// Runs the analyzer on `proc_name` in `image`, pulling the CYCLES profile
// and any monitored event profiles from the system's daemon.
Result<ProcedureAnalysis> AnalyzeFromSystem(System& system, const ExecutableImage& image,
                                            const std::string& proc_name,
                                            const AnalysisConfig& config = AnalysisConfig());

}  // namespace dcpi

#endif  // SRC_TOOLS_TOOLKIT_H_
