// dcpi_sim CLI: runs a named workload on the simulated machine with
// continuous profiling, and writes the profile database plus serialized
// images for the offline tools.
//
// Usage:
//   dcpi_sim [--continuous] [--epochs N] [--quanta Q] [--fleet N]
//            [--compact] <workload> <output_dir> [mode=default]
//            [scale=0.25] [cpus]
//
// Batch mode (the default) runs the workload to completion into one epoch
// and seals it on clean shutdown. --continuous reproduces the paper's
// always-on operation: the workload is re-instantiated and run for Q
// scheduler quanta per epoch (--quanta, default 400), then the epoch is
// sealed and rolled, N times (--epochs, default 3). Process exits between
// segments change the image map, so the daemon's map-change trigger and
// the periodic timed flush both exercise; the offline tools can read the
// sealed epochs (dcpiprof --all-epochs) while a longer run is still
// writing.
//
// --fleet N runs N independent instances of the whole pipeline (one
// simulated host each, distinct sampling seeds) concurrently, writing one
// database shard per host under <output_dir>/db/host_<i> — the layout the
// --fleet analysis tools and FleetView read. Images are identical across
// hosts and saved once. --compact additionally runs a background
// compaction thread that folds fleet-wide-sealed epochs into a merged
// single-host database at <output_dir>/db/merged while collection is still
// running, finishing the remainder after the last host exits.
//
// --mem-fraction F takes the given fraction of samples as ProfileMe-style
// wide memory records (data VA, latency, memory level, TLB bit), feeding
// the database's data-line axis that dcpimem reads. 0 (the default) is
// byte-identical to a run without memory sampling.
//
// Workloads: copy scale sum triad specfp specint gcc x11perf altavista dss
//            parallel_specfp timesharing pointer_chase branch_heavy
//            icache_stress imul_fdiv write_buffer false_sharing
// Modes: cycles default mux

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/isa/image_io.h"
#include "src/profiledb/fleet.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

namespace dcpi {
namespace {

Workload MakeWorkload(WorkloadFactory& factory, const std::string& name) {
  if (name == "copy") return factory.McCalpin(StreamKernel::kCopy);
  if (name == "scale") return factory.McCalpin(StreamKernel::kScale);
  if (name == "sum") return factory.McCalpin(StreamKernel::kSum);
  if (name == "triad") return factory.McCalpin(StreamKernel::kTriad);
  if (name == "specfp") return factory.SpecFpLike();
  if (name == "specint") return factory.SpecIntLike();
  if (name == "gcc") return factory.GccLike();
  if (name == "x11perf") return factory.X11PerfLike();
  if (name == "altavista") return factory.AltaVistaLike();
  if (name == "dss") return factory.DssLike();
  if (name == "parallel_specfp") return factory.ParallelSpecFp();
  if (name == "timesharing") return factory.Timesharing();
  if (name == "pointer_chase") return factory.PointerChase();
  if (name == "branch_heavy") return factory.BranchHeavy();
  if (name == "icache_stress") return factory.IcacheStress();
  if (name == "imul_fdiv") return factory.ImulFdivStress();
  if (name == "write_buffer") return factory.WriteBufferStress();
  if (name == "false_sharing") return factory.FalseSharing();
  std::fprintf(stderr, "unknown workload %s\n", name.c_str());
  std::exit(2);
}

int Usage() {
  std::fprintf(stderr,
               "usage: dcpi_sim [--continuous] [--epochs N] [--quanta Q] "
               "[--fleet N] [--compact] [--mem-fraction F] <workload> "
               "<output_dir> [mode] [scale] [cpus]\n");
  return 2;
}

// Strictly parsed positive double for the scale argument ("0.25x" and "-1"
// are usage errors, not silently truncated or negative workloads).
bool ParsePositiveDouble(const char* s, double* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  double value = std::strtod(s, &end);
  if (end == nullptr || *end != '\0' || !(value > 0)) return false;
  *out = value;
  return true;
}

struct RunParams {
  std::string workload_name;
  std::string out_dir;
  std::string db_root;
  std::string mode_name;
  double scale = 0.25;
  uint32_t cpus = 0;
  double mem_fraction = 0.0;  // fraction of samples taken as wide records
  bool continuous = false;
  uint32_t num_epochs = 3;
  uint64_t quanta_per_epoch = 400;
  uint32_t rng_seed = 1;
  bool save_images = false;  // one host of a fleet saves the shared set
};

struct RunOutcome {
  SystemResult result;
  bool failed = false;
  size_t epochs = 0;
  size_t sealed = 0;
};

// One full collection pipeline — a single simulated host. Fleet mode runs
// several of these concurrently; each touches only its own db_root, so
// hosts never contend on the database.
RunOutcome RunInstance(const RunParams& params) {
  RunOutcome outcome;
  WorkloadFactory factory(params.scale);
  Workload workload = MakeWorkload(factory, params.workload_name);
  SystemConfig config;
  config.kernel.num_cpus =
      params.cpus != 0 ? params.cpus : std::max(1u, workload.num_cpus);
  config.mode = params.mode_name == "cycles" ? ProfilingMode::kCycles
                : params.mode_name == "mux"  ? ProfilingMode::kMux
                                             : ProfilingMode::kDefault;
  config.period_scale = 1.0 / 16;  // dense sampling for offline analysis
  config.db_root = params.db_root;
  config.rng_seed = params.rng_seed;
  config.mem_fraction = params.mem_fraction;
  if (params.continuous) {
    // Continuous operation: flush the cumulative profiles at every drain
    // interval and let image-map changes (the per-epoch process exits)
    // schedule rolls at quiesce points.
    config.daemon_flush_interval = config.daemon_drain_interval;
    config.roll_on_map_change = true;
  }
  System system(config);

  const uint64_t epoch_cycles =
      params.quanta_per_epoch * config.kernel.quantum_cycles;
  const uint32_t segments = params.continuous ? params.num_epochs : 1;
  for (uint32_t segment = 0; segment < segments; ++segment) {
    // Each segment gets a fresh instantiation of the workload: new
    // processes, new image mappings — the exec/exit churn that delimits
    // epochs in the paper's continuous runs.
    Status status = workload.Instantiate(&system);
    if (!status.ok()) {
      std::fprintf(stderr, "instantiate failed: %s\n", status.ToString().c_str());
      outcome.failed = true;
      return outcome;
    }
    if (segment == 0 && params.save_images) {
      // The image set is known once the workload is mapped; save it up
      // front so the offline tools can read a continuous run mid-flight.
      std::filesystem::create_directories(params.out_dir + "/images");
      int image_index = 0;
      for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
        std::string path = params.out_dir + "/images/image_" +
                           std::to_string(image_index++) + ".img";
        Status saved = SaveImage(*truth.image, path);
        if (!saved.ok()) {
          std::fprintf(stderr, "cannot save image: %s\n", saved.ToString().c_str());
          outcome.failed = true;
        }
      }
    }
    uint64_t cap = params.continuous
                       ? system.kernel().ElapsedCycles() + epoch_cycles
                       : ~0ull;
    outcome.result = system.Run(cap);
    if (outcome.result.had_error) break;
    if (params.continuous && segment + 1 < segments) {
      Status rolled = system.RollEpoch();
      if (!rolled.ok()) {
        std::fprintf(stderr, "epoch roll failed: %s\n", rolled.ToString().c_str());
        outcome.failed = true;
        return outcome;
      }
    }
  }
  // Seal the final epoch on clean shutdown, so every epoch of a finished
  // run is analyzable the same way (the tools default to sealed epochs).
  if (!outcome.result.had_error) {
    Status sealed = system.SealCurrentEpoch();
    if (!sealed.ok()) {
      std::fprintf(stderr, "seal failed: %s\n", sealed.ToString().c_str());
      outcome.failed = true;
      return outcome;
    }
  }
  if (outcome.result.had_error) outcome.failed = true;
  if (system.database() != nullptr) {
    outcome.epochs = system.database()->ListEpochs().size();
    outcome.sealed = system.database()->ListSealedEpochs().size();
  }
  return outcome;
}

// Epochs sealed on every host of the fleet — present everywhere, open
// nowhere. Stricter than FleetView::ListSealedEpochs (which accepts epochs
// a lagging host has not created yet): the mid-run compactor must not
// materialize and permanently seal an epoch a host is still going to
// write.
std::vector<uint32_t> SealedOnAllHosts(const FleetView& fleet) {
  std::vector<uint32_t> result;
  if (fleet.num_hosts() == 0) return result;
  for (uint32_t epoch : fleet.ListSealedEpochs()) {
    bool everywhere = true;
    for (size_t h = 0; h < fleet.num_hosts(); ++h) {
      if (!fleet.host(h).IsSealed(epoch)) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) result.push_back(epoch);
  }
  return result;
}

}  // namespace
}  // namespace dcpi

int main(int argc, char** argv) {
  using namespace dcpi;
  RunParams params;
  uint32_t fleet_hosts = 0;  // 0: plain single-instance run
  bool compact = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--continuous") == 0) {
      params.continuous = true;
    } else if (std::strcmp(argv[arg], "--compact") == 0) {
      compact = true;
    } else if (std::strcmp(argv[arg], "--epochs") == 0 && arg + 1 < argc) {
      if (!ParseUint32(argv[++arg], &params.num_epochs) || params.num_epochs < 1) {
        return Usage();
      }
    } else if (std::strcmp(argv[arg], "--quanta") == 0 && arg + 1 < argc) {
      uint32_t quanta = 0;
      if (!ParseUint32(argv[++arg], &quanta) || quanta == 0) return Usage();
      params.quanta_per_epoch = quanta;
    } else if (std::strcmp(argv[arg], "--fleet") == 0 && arg + 1 < argc) {
      if (!ParseUint32(argv[++arg], &fleet_hosts) || fleet_hosts < 1 ||
          fleet_hosts > 256) {
        return Usage();
      }
    } else if (std::strcmp(argv[arg], "--mem-fraction") == 0 && arg + 1 < argc) {
      // 0 is legal (and the default): byte-identical to a build without
      // memory sampling.
      char* end = nullptr;
      double value = std::strtod(argv[++arg], &end);
      if (argv[arg][0] == '\0' || end == nullptr || *end != '\0' || value < 0 ||
          value > 1) {
        return Usage();
      }
      params.mem_fraction = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  params.workload_name = argv[arg];
  params.out_dir = argv[arg + 1];
  params.mode_name = argc - arg > 2 ? argv[arg + 2] : "default";
  if (argc - arg > 3 && !ParsePositiveDouble(argv[arg + 3], &params.scale)) {
    std::fprintf(stderr, "malformed scale '%s'\n", argv[arg + 3]);
    return Usage();
  }
  if (argc - arg > 4 && !ParseUint32(argv[arg + 4], &params.cpus)) {
    std::fprintf(stderr, "malformed cpu count '%s'\n", argv[arg + 4]);
    return Usage();
  }
  if (compact && fleet_hosts == 0) {
    std::fprintf(stderr, "--compact requires --fleet N\n");
    return Usage();
  }

  if (fleet_hosts == 0) {
    params.db_root = params.out_dir + "/db";
    params.save_images = true;
    RunOutcome outcome = RunInstance(params);
    std::printf("workload:        %s (%s mode%s)\n", params.workload_name.c_str(),
                params.mode_name.c_str(), params.continuous ? ", continuous" : "");
    std::printf("elapsed cycles:  %llu\n",
                static_cast<unsigned long long>(outcome.result.elapsed_cycles));
    std::printf("instructions:    %llu\n",
                static_cast<unsigned long long>(outcome.result.instructions));
    std::printf("cycles samples:  %llu\n",
                static_cast<unsigned long long>(
                    outcome.result.samples[static_cast<int>(EventType::kCycles)]));
    std::printf("epoch rolls:     %llu (%llu timed flush(es))\n",
                static_cast<unsigned long long>(outcome.result.daemon.epoch_rolls),
                static_cast<unsigned long long>(outcome.result.daemon.timed_flushes));
    std::printf("profile db:      %s (%zu epoch(s), %zu sealed)\n",
                params.db_root.c_str(), outcome.epochs, outcome.sealed);
    std::printf("images:          %s/images/\n", params.out_dir.c_str());
    return outcome.failed ? 1 : 0;
  }

  // Fleet mode: one full pipeline per host, concurrently. Hosts share the
  // workload and image set but sample with distinct seeds, so shards differ
  // the way real machines do while staying individually deterministic.
  const std::string fleet_root = params.out_dir + "/db";
  std::filesystem::create_directories(fleet_root);
  std::vector<RunParams> host_params(fleet_hosts, params);
  std::vector<RunOutcome> outcomes(fleet_hosts);
  for (uint32_t h = 0; h < fleet_hosts; ++h) {
    host_params[h].db_root = fleet_root + "/host_" + std::to_string(h);
    host_params[h].rng_seed = 1 + h;
    host_params[h].save_images = h == 0;
  }

  // Optional background compaction: fold epochs that every host has sealed
  // into <out>/db/merged while collection continues, then finish the tail.
  //
  // Concurrency invariants of the fleet run (no locks needed):
  //  * Each host thread writes only outcomes[h] and its own db shard
  //    (host_<h>/); shards are disjoint directories, outcomes are disjoint
  //    elements, and the main thread reads them only after join(), which
  //    is a full happens-before edge.
  //  * The compactor communicates with the host threads purely through
  //    the filesystem (sealed-epoch markers written via the atomic
  //    rename+CRC path), never through shared memory.
  //  * hosts_done is a release store after every join; the compactor's
  //    acquire load therefore observes all final seal markers before its
  //    last full compaction pass.
  std::atomic<bool> hosts_done{false};
  std::thread compactor;
  if (compact) {
    compactor = std::thread([&] {
      const std::string merged_root = fleet_root + "/merged";
      while (!hosts_done.load(std::memory_order_acquire)) {
        FleetView fleet(fleet_root);
        Status status =
            fleet.num_hosts() == fleet_hosts
                ? CompactFleet(fleet, merged_root, SealedOnAllHosts(fleet))
                : Status::Ok();  // shards still appearing
        if (!status.ok()) {
          std::fprintf(stderr, "background compaction: %s\n",
                       status.ToString().c_str());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      FleetView fleet(fleet_root);
      Status status = CompactFleet(fleet, merged_root, fleet.ListSealedEpochs());
      if (!status.ok()) {
        std::fprintf(stderr, "final compaction: %s\n", status.ToString().c_str());
      }
    });
  }

  std::vector<std::thread> hosts;
  hosts.reserve(fleet_hosts);
  for (uint32_t h = 0; h < fleet_hosts; ++h) {
    hosts.emplace_back([&, h] { outcomes[h] = RunInstance(host_params[h]); });
  }
  for (std::thread& t : hosts) t.join();
  hosts_done.store(true, std::memory_order_release);
  if (compactor.joinable()) compactor.join();

  bool failed = false;
  unsigned long long total_cycles_samples = 0;
  for (uint32_t h = 0; h < fleet_hosts; ++h) {
    failed = failed || outcomes[h].failed;
    total_cycles_samples +=
        outcomes[h].result.samples[static_cast<int>(EventType::kCycles)];
    std::printf("host_%u: %llu cycles sample(s), %zu epoch(s), %zu sealed%s\n", h,
                static_cast<unsigned long long>(
                    outcomes[h].result.samples[static_cast<int>(EventType::kCycles)]),
                outcomes[h].epochs, outcomes[h].sealed,
                outcomes[h].failed ? " [FAILED]" : "");
  }
  std::printf("workload:        %s (%s mode%s, fleet of %u)\n",
              params.workload_name.c_str(), params.mode_name.c_str(),
              params.continuous ? ", continuous" : "", fleet_hosts);
  std::printf("cycles samples:  %llu (all hosts)\n", total_cycles_samples);
  std::printf("fleet db:        %s (%u shard(s)%s)\n", fleet_root.c_str(),
              fleet_hosts, compact ? ", compacted to merged/" : "");
  std::printf("images:          %s/images/\n", params.out_dir.c_str());
  return failed ? 1 : 0;
}
