// dcpi_sim CLI: runs a named workload on the simulated machine with
// continuous profiling, and writes the profile database plus serialized
// images for the offline tools.
//
// Usage:
//   dcpi_sim [--continuous] [--epochs N] [--quanta Q]
//            <workload> <output_dir> [mode=default] [scale=0.25] [cpus]
//
// Batch mode (the default) runs the workload to completion into one epoch
// and seals it on clean shutdown. --continuous reproduces the paper's
// always-on operation: the workload is re-instantiated and run for Q
// scheduler quanta per epoch (--quanta, default 400), then the epoch is
// sealed and rolled, N times (--epochs, default 3). Process exits between
// segments change the image map, so the daemon's map-change trigger and
// the periodic timed flush both exercise; the offline tools can read the
// sealed epochs (dcpiprof --all-epochs) while a longer run is still
// writing.
//
// Workloads: copy scale sum triad specfp specint gcc x11perf altavista dss
//            parallel_specfp timesharing pointer_chase branch_heavy
//            icache_stress imul_fdiv write_buffer
// Modes: cycles default mux

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/isa/image_io.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

namespace dcpi {
namespace {

Workload MakeWorkload(WorkloadFactory& factory, const std::string& name) {
  if (name == "copy") return factory.McCalpin(StreamKernel::kCopy);
  if (name == "scale") return factory.McCalpin(StreamKernel::kScale);
  if (name == "sum") return factory.McCalpin(StreamKernel::kSum);
  if (name == "triad") return factory.McCalpin(StreamKernel::kTriad);
  if (name == "specfp") return factory.SpecFpLike();
  if (name == "specint") return factory.SpecIntLike();
  if (name == "gcc") return factory.GccLike();
  if (name == "x11perf") return factory.X11PerfLike();
  if (name == "altavista") return factory.AltaVistaLike();
  if (name == "dss") return factory.DssLike();
  if (name == "parallel_specfp") return factory.ParallelSpecFp();
  if (name == "timesharing") return factory.Timesharing();
  if (name == "pointer_chase") return factory.PointerChase();
  if (name == "branch_heavy") return factory.BranchHeavy();
  if (name == "icache_stress") return factory.IcacheStress();
  if (name == "imul_fdiv") return factory.ImulFdivStress();
  if (name == "write_buffer") return factory.WriteBufferStress();
  std::fprintf(stderr, "unknown workload %s\n", name.c_str());
  std::exit(2);
}

int Usage() {
  std::fprintf(stderr,
               "usage: dcpi_sim [--continuous] [--epochs N] [--quanta Q] "
               "<workload> <output_dir> [mode] [scale] [cpus]\n");
  return 2;
}

}  // namespace
}  // namespace dcpi

int main(int argc, char** argv) {
  using namespace dcpi;
  bool continuous = false;
  int num_epochs = 3;
  uint64_t quanta_per_epoch = 400;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--continuous") == 0) {
      continuous = true;
    } else if (std::strcmp(argv[arg], "--epochs") == 0 && arg + 1 < argc) {
      num_epochs = std::atoi(argv[++arg]);
      if (num_epochs < 1) return Usage();
    } else if (std::strcmp(argv[arg], "--quanta") == 0 && arg + 1 < argc) {
      quanta_per_epoch = static_cast<uint64_t>(std::atoll(argv[++arg]));
      if (quanta_per_epoch == 0) return Usage();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  std::string workload_name = argv[arg];
  std::string out_dir = argv[arg + 1];
  std::string mode_name = argc - arg > 2 ? argv[arg + 2] : "default";
  double scale = argc - arg > 3 ? std::atof(argv[arg + 3]) : 0.25;
  uint32_t cpus = argc - arg > 4 ? static_cast<uint32_t>(std::atoi(argv[arg + 4])) : 0;

  WorkloadFactory factory(scale);
  Workload workload = MakeWorkload(factory, workload_name);
  SystemConfig config;
  config.kernel.num_cpus = cpus != 0 ? cpus : std::max(1u, workload.num_cpus);
  config.mode = mode_name == "cycles" ? ProfilingMode::kCycles
                : mode_name == "mux"  ? ProfilingMode::kMux
                                      : ProfilingMode::kDefault;
  config.period_scale = 1.0 / 16;  // dense sampling for offline analysis
  config.db_root = out_dir + "/db";
  if (continuous) {
    // Continuous operation: flush the cumulative profiles at every drain
    // interval and let image-map changes (the per-epoch process exits)
    // schedule rolls at quiesce points.
    config.daemon_flush_interval = config.daemon_drain_interval;
    config.roll_on_map_change = true;
  }
  System system(config);

  SystemResult result;
  const uint64_t epoch_cycles = quanta_per_epoch * config.kernel.quantum_cycles;
  const int segments = continuous ? num_epochs : 1;
  bool save_failed = false;
  for (int segment = 0; segment < segments; ++segment) {
    // Each segment gets a fresh instantiation of the workload: new
    // processes, new image mappings — the exec/exit churn that delimits
    // epochs in the paper's continuous runs.
    Status status = workload.Instantiate(&system);
    if (!status.ok()) {
      std::fprintf(stderr, "instantiate failed: %s\n", status.ToString().c_str());
      return 1;
    }
    if (segment == 0) {
      // The image set is known once the workload is mapped; save it up
      // front so the offline tools can read a continuous run mid-flight.
      std::filesystem::create_directories(out_dir + "/images");
      int image_index = 0;
      for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
        std::string path =
            out_dir + "/images/image_" + std::to_string(image_index++) + ".img";
        Status saved = SaveImage(*truth.image, path);
        if (!saved.ok()) {
          std::fprintf(stderr, "cannot save image: %s\n",
                       saved.ToString().c_str());
          save_failed = true;
        }
      }
    }
    uint64_t cap = continuous
                       ? system.kernel().ElapsedCycles() + epoch_cycles
                       : ~0ull;
    result = system.Run(cap);
    if (result.had_error) break;
    if (continuous && segment + 1 < segments) {
      Status rolled = system.RollEpoch();
      if (!rolled.ok()) {
        std::fprintf(stderr, "epoch roll failed: %s\n", rolled.ToString().c_str());
        return 1;
      }
    }
  }
  // Seal the final epoch on clean shutdown, so every epoch of a finished
  // run is analyzable the same way (the tools default to sealed epochs).
  if (!result.had_error) {
    Status sealed = system.SealCurrentEpoch();
    if (!sealed.ok()) {
      std::fprintf(stderr, "seal failed: %s\n", sealed.ToString().c_str());
      return 1;
    }
  }

  std::printf("workload:        %s (%s mode, %u cpu%s%s)\n", workload.name.c_str(),
              ProfilingModeName(config.mode), config.kernel.num_cpus,
              config.kernel.num_cpus == 1 ? "" : "s",
              continuous ? ", continuous" : "");
  std::printf("elapsed cycles:  %llu\n",
              static_cast<unsigned long long>(result.elapsed_cycles));
  std::printf("instructions:    %llu\n",
              static_cast<unsigned long long>(result.instructions));
  std::printf("cycles samples:  %llu\n",
              static_cast<unsigned long long>(
                  result.samples[static_cast<int>(EventType::kCycles)]));
  std::printf("epoch rolls:     %llu (%llu timed flush(es))\n",
              static_cast<unsigned long long>(result.daemon.epoch_rolls),
              static_cast<unsigned long long>(result.daemon.timed_flushes));
  std::printf("profile db:      %s (%zu epoch(s), %zu sealed)\n",
              config.db_root.c_str(), system.database()->ListEpochs().size(),
              system.database()->ListSealedEpochs().size());
  std::printf("images:          %s/images/\n", out_dir.c_str());
  return (result.had_error || save_failed) ? 1 : 0;
}
