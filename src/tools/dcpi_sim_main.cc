// dcpi_sim CLI: runs a named workload on the simulated machine with
// continuous profiling, and writes the profile database plus serialized
// images for the offline tools.
//
// Usage:
//   dcpi_sim <workload> <output_dir> [mode=default] [scale=0.25] [cpus]
//
// Workloads: copy scale sum triad specfp specint gcc x11perf altavista dss
//            parallel_specfp timesharing pointer_chase branch_heavy
//            icache_stress imul_fdiv write_buffer
// Modes: cycles default mux

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/isa/image_io.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

namespace dcpi {
namespace {

Workload MakeWorkload(WorkloadFactory& factory, const std::string& name) {
  if (name == "copy") return factory.McCalpin(StreamKernel::kCopy);
  if (name == "scale") return factory.McCalpin(StreamKernel::kScale);
  if (name == "sum") return factory.McCalpin(StreamKernel::kSum);
  if (name == "triad") return factory.McCalpin(StreamKernel::kTriad);
  if (name == "specfp") return factory.SpecFpLike();
  if (name == "specint") return factory.SpecIntLike();
  if (name == "gcc") return factory.GccLike();
  if (name == "x11perf") return factory.X11PerfLike();
  if (name == "altavista") return factory.AltaVistaLike();
  if (name == "dss") return factory.DssLike();
  if (name == "parallel_specfp") return factory.ParallelSpecFp();
  if (name == "timesharing") return factory.Timesharing();
  if (name == "pointer_chase") return factory.PointerChase();
  if (name == "branch_heavy") return factory.BranchHeavy();
  if (name == "icache_stress") return factory.IcacheStress();
  if (name == "imul_fdiv") return factory.ImulFdivStress();
  if (name == "write_buffer") return factory.WriteBufferStress();
  std::fprintf(stderr, "unknown workload %s\n", name.c_str());
  std::exit(2);
}

}  // namespace
}  // namespace dcpi

int main(int argc, char** argv) {
  using namespace dcpi;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: dcpi_sim <workload> <output_dir> [mode] [scale] [cpus]\n");
    return 2;
  }
  std::string workload_name = argv[1];
  std::string out_dir = argv[2];
  std::string mode_name = argc > 3 ? argv[3] : "default";
  double scale = argc > 4 ? std::atof(argv[4]) : 0.25;
  uint32_t cpus = argc > 5 ? static_cast<uint32_t>(std::atoi(argv[5])) : 0;

  WorkloadFactory factory(scale);
  Workload workload = MakeWorkload(factory, workload_name);
  SystemConfig config;
  config.kernel.num_cpus = cpus != 0 ? cpus : std::max(1u, workload.num_cpus);
  config.mode = mode_name == "cycles" ? ProfilingMode::kCycles
                : mode_name == "mux"  ? ProfilingMode::kMux
                                      : ProfilingMode::kDefault;
  config.period_scale = 1.0 / 16;  // dense sampling for offline analysis
  config.db_root = out_dir + "/db";
  System system(config);
  Status status = workload.Instantiate(&system);
  if (!status.ok()) {
    std::fprintf(stderr, "instantiate failed: %s\n", status.ToString().c_str());
    return 1;
  }
  SystemResult result = system.Run();

  // Save images for the offline tools.
  std::filesystem::create_directories(out_dir + "/images");
  int image_index = 0;
  bool save_failed = false;
  for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
    std::string path = out_dir + "/images/image_" + std::to_string(image_index++) + ".img";
    Status saved = SaveImage(*truth.image, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot save image: %s\n", saved.ToString().c_str());
      save_failed = true;
    }
  }

  std::printf("workload:        %s (%s mode, %u cpu%s)\n", workload.name.c_str(),
              ProfilingModeName(config.mode), config.kernel.num_cpus,
              config.kernel.num_cpus == 1 ? "" : "s");
  std::printf("elapsed cycles:  %llu\n",
              static_cast<unsigned long long>(result.elapsed_cycles));
  std::printf("instructions:    %llu\n",
              static_cast<unsigned long long>(result.instructions));
  std::printf("cycles samples:  %llu\n",
              static_cast<unsigned long long>(
                  result.samples[static_cast<int>(EventType::kCycles)]));
  std::printf("profile db:      %s (epoch %u)\n", config.db_root.c_str(),
              system.database()->current_epoch());
  std::printf("images:          %s/images/\n", out_dir.c_str());
  return (result.had_error || save_failed) ? 1 : 0;
}
