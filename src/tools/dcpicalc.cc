#include "src/tools/dcpicalc.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace dcpi {

namespace {

std::string StaticStallLetter(StaticStallKind kind) {
  switch (kind) {
    case StaticStallKind::kSlotting:
      return "s (slotting hazard)";
    case StaticStallKind::kRaDependency:
      return "a (Ra dependency)";
    case StaticStallKind::kRbDependency:
      return "b (Rb dependency)";
    case StaticStallKind::kRcDependency:
      return "c (Rc dependency)";
    case StaticStallKind::kFuDependency:
      return "u (FU dependency)";
    case StaticStallKind::kNone:
      break;
  }
  return "";
}

}  // namespace

std::string FormatCalcListing(const ExecutableImage& image,
                              const ProcedureAnalysis& analysis) {
  (void)image;  // kept for interface symmetry with the other formatters
  char buf[256];
  std::string out;
  double best = analysis.best_case_cpi;
  double actual = analysis.actual_cpi;
  std::snprintf(buf, sizeof(buf), "*** Best-case %.2fCPI\n*** Actual    %.2fCPI\n\n",
                best, actual);
  out += buf;

  // Size the instruction column from the longest disassembly so a long
  // operand list cannot push its samples/CPI columns out of line; 28 is
  // the floor (the historical fixed width).
  std::vector<std::string> disassembly;
  disassembly.reserve(analysis.instructions.size());
  int column = 28;
  for (const InstructionAnalysis& ia : analysis.instructions) {
    disassembly.push_back(Disassemble(ia.inst, ia.pc));
    column = std::max(column, static_cast<int>(disassembly.back().size()));
  }
  out += "Addr      Instruction";
  out.append(static_cast<size_t>(column - 12), ' ');
  out += "Samples    CPI     Culprit\n";

  for (size_t i = 0; i < analysis.instructions.size(); ++i) {
    const InstructionAnalysis& ia = analysis.instructions[i];
    // Bubble lines for dynamic culprits.
    if (ia.dynamic_stall >= 0.5) {
      std::string letters;
      for (int c = 0; c < kNumCulpritKinds; ++c) {
        if (ia.culprits[c]) letters += CulpritKindLetter(static_cast<CulpritKind>(c));
      }
      if (ia.unexplained) letters = "?";
      std::snprintf(buf, sizeof(buf), "   %-6s ... %.1fcy %s\n", letters.c_str(),
                    ia.dynamic_stall,
                    ia.unexplained ? "(unexplained)" : "(dynamic stall)");
      out += buf;
    }
    // Bubble line for static stalls.
    if (ia.static_stall != StaticStallKind::kNone) {
      std::snprintf(buf, sizeof(buf), "   %s\n", StaticStallLetter(ia.static_stall).c_str());
      out += buf;
    }

    std::string culprit;
    if (ia.dcache_culprit_pc != 0) {
      std::snprintf(buf, sizeof(buf), "%06llx",
                    static_cast<unsigned long long>(ia.dcache_culprit_pc));
      culprit = buf;
    } else if (ia.static_culprit_pc != 0) {
      std::snprintf(buf, sizeof(buf), "%06llx",
                    static_cast<unsigned long long>(ia.static_culprit_pc));
      culprit = buf;
    }
    std::string cpi_text;
    if (ia.dual_issued && ia.samples == 0) {
      cpi_text = "(dual issue)";
    } else if (ia.frequency > 0) {
      std::snprintf(buf, sizeof(buf), "%.1fcy", ia.cpi);
      cpi_text = buf;
    }
    std::snprintf(buf, sizeof(buf), "%06llx  %-*s %8llu  %-12s %s\n",
                  static_cast<unsigned long long>(ia.pc), column,
                  disassembly[i].c_str(),
                  static_cast<unsigned long long>(ia.samples), cpi_text.c_str(),
                  culprit.c_str());
    out += buf;
  }
  return out;
}

std::string FormatStallSummary(const ProcedureAnalysis& analysis) {
  const StallSummary& s = analysis.summary;
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf), "*** Best-case %.2fCPI, Actual %.2fCPI\n***\n",
                analysis.best_case_cpi, analysis.actual_cpi);
  out += buf;

  auto range_row = [&](const char* name, double min_pct, double max_pct) {
    std::snprintf(buf, sizeof(buf), "***   %-22s %5.1f%% to %5.1f%%\n", name, min_pct,
                  max_pct);
    out += buf;
  };
  static const CulpritKind kOrder[] = {
      CulpritKind::kIcache,      CulpritKind::kItb,       CulpritKind::kDcache,
      CulpritKind::kDtb,         CulpritKind::kWriteBuffer, CulpritKind::kSync,
      CulpritKind::kBranchMispredict, CulpritKind::kImulBusy, CulpritKind::kFdivBusy,
  };
  for (CulpritKind kind : kOrder) {
    int c = static_cast<int>(kind);
    range_row(CulpritKindName(kind), s.dynamic_min_pct[c], s.dynamic_max_pct[c]);
  }
  std::snprintf(buf, sizeof(buf), "***   %-22s %5.1f%%\n", "Unexplained stall",
                s.unexplained_stall_pct);
  out += buf;
  std::snprintf(buf, sizeof(buf), "***   %-22s %5.1f%%\n", "Unexplained gain",
                s.unexplained_gain_pct);
  out += buf;
  out += "*** " + std::string(40, '-') + "\n";
  std::snprintf(buf, sizeof(buf), "***   %-22s %5.1f%%\n", "Subtotal dynamic",
                s.total_dynamic_pct);
  out += buf;
  out += "***\n";

  auto static_row = [&](const char* name, double pct) {
    std::snprintf(buf, sizeof(buf), "***   %-22s %5.1f%%\n", name, pct);
    out += buf;
  };
  static_row("Slotting", s.static_pct_slotting);
  static_row("Ra dependency", s.static_pct_ra);
  static_row("Rb dependency", s.static_pct_rb);
  static_row("Rc dependency", s.static_pct_rc);
  static_row("FU dependency", s.static_pct_fu);
  out += "*** " + std::string(40, '-') + "\n";
  static_row("Subtotal static", s.subtotal_static());
  out += "*** " + std::string(40, '-') + "\n";
  static_row("Total stall", s.total_dynamic_pct + s.subtotal_static());
  static_row("Execution", s.execution_pct);
  static_row("Total tallied", s.total_dynamic_pct + s.subtotal_static() +
                                  s.execution_pct + s.unexplained_gain_pct);
  std::snprintf(buf, sizeof(buf), "***   (total cycles in procedure: %.0f)\n",
                s.total_cycles);
  out += buf;
  return out;
}

}  // namespace dcpi
