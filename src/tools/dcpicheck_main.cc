// dcpicheck CLI: static verification of a profile database + image set.
//
// Usage:
//   dcpicheck [--jobs N] [--no-cache] [--epoch N]... [--all-epochs]
//             <db_root> <image_file>...
//
// Runs all five verification passes (image lint, CFG structure,
// differential cycle equivalence, flow conservation, schedule invariants)
// and prints a structured report. Epoch selection is shared with the other
// tools (toolkit.h): by default the latest sealed epoch is checked;
// --all-epochs checks every sealed epoch, each through its own result
// cache under <db_root>/epoch_<N>/.cache. Procedure analyses fan out over
// --jobs worker threads (default: hardware concurrency); the report is
// byte-identical for any jobs count and cold or warm cache. Exits 0 when
// no errors were found, 1 on violations or unreadable inputs, 2 on usage
// errors.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/check/dcpicheck.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpicheck [--jobs N] [--no-cache] [--epoch N]... "
               "[--all-epochs] <db_root> <image_file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  ToolOptions tool_options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &tool_options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  const std::string db_root = argv[arg];

  Result<ToolContext> context = OpenToolDatabase(db_root, tool_options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }

  DcpicheckOptions options;
  options.db_root = db_root;
  options.epochs = context.value().epochs;
  options.jobs = tool_options.jobs;
  options.use_cache = tool_options.use_cache;
  for (int i = arg + 1; i < argc; ++i) options.image_files.push_back(argv[i]);

  CheckReport report = RunDcpicheck(options);
  std::fputs(report.ToString().c_str(), stdout);
  return report.ok() ? 0 : 1;
}
