// dcpicheck CLI: static verification of a profile database + image set.
//
// Usage:
//   dcpicheck [--fleet] [--jobs N] [--no-cache] [--epoch N]...
//             [--all-epochs] <db_root> <image_file>...
//
// With --fleet, <db_root> is a fleet root of host_<id> shards; every shard
// is checked independently (each under a "=== host_<id> ===" header, each
// with its own result cache) and the exit code reflects the worst shard —
// one corrupt host fails the fleet check.
//
// Runs all five verification passes (image lint, CFG structure,
// differential cycle equivalence, flow conservation, schedule invariants)
// and prints a structured report. Epoch selection is shared with the other
// tools (toolkit.h): by default the latest sealed epoch is checked;
// --all-epochs checks every sealed epoch, each through its own result
// cache under <db_root>/epoch_<N>/.cache. Procedure analyses fan out over
// --jobs worker threads (default: hardware concurrency); the report is
// byte-identical for any jobs count and cold or warm cache. Exits 0 when
// no errors were found, 1 on violations or unreadable inputs, 2 on usage
// errors.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/check/dcpicheck.h"
#include "src/tools/toolkit.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcpicheck [--fleet] [--jobs N] [--no-cache] "
               "[--epoch N]... [--all-epochs] <db_root> <image_file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcpi;
  ToolOptions tool_options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    int shared = ParseToolFlag(argc, argv, &arg, &tool_options);
    if (shared < 0) return Usage();
    if (shared == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) return Usage();
  const std::string db_root = argv[arg];

  Result<ToolContext> context = OpenToolDatabase(db_root, tool_options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }

  DcpicheckOptions options;
  options.jobs = tool_options.jobs;
  options.use_cache = tool_options.use_cache;
  for (int i = arg + 1; i < argc; ++i) options.image_files.push_back(argv[i]);

  const ToolContext& ctx = context.value();
  if (ctx.fleet != nullptr) {
    // Check every shard independently: a fleet is healthy only when each
    // host's database passes on its own.
    bool all_ok = true;
    for (size_t h = 0; h < ctx.fleet->num_hosts(); ++h) {
      const ProfileDatabase& host = ctx.fleet->host(h);
      DcpicheckOptions host_options = options;
      host_options.db_root = host.root();
      // Only the epochs this shard actually has: the fleet-wide epoch
      // union may be sparse per host.
      std::vector<uint32_t> have = host.ListEpochs();
      for (uint32_t epoch : ctx.epochs) {
        if (std::find(have.begin(), have.end(), epoch) != have.end()) {
          host_options.epochs.push_back(epoch);
        }
      }
      std::fprintf(stdout, "=== %s ===\n", ctx.fleet->host_names()[h].c_str());
      CheckReport report = RunDcpicheck(host_options);
      std::fputs(report.ToString().c_str(), stdout);
      all_ok = all_ok && report.ok();
    }
    return all_ok ? 0 : 1;
  }

  options.db_root = db_root;
  options.epochs = ctx.epochs;
  CheckReport report = RunDcpicheck(options);
  std::fputs(report.ToString().c_str(), stdout);
  return report.ok() ? 0 : 1;
}
