// dcpicheck CLI: static verification of a profile database + image set.
//
// Usage:
//   dcpicheck [--jobs N] [--no-cache] <db_root> <epoch> <image_file>...
//
// Runs all five verification passes (image lint, CFG structure,
// differential cycle equivalence, flow conservation, schedule invariants)
// and prints a structured report. Procedure analyses fan out over --jobs
// worker threads (default: hardware concurrency) and are cached under
// <db_root>/epoch_<N>/.cache keyed by image/profile/config content; the
// report is byte-identical for any jobs count and cold or warm cache.
// Exits 0 when no errors were found, 1 on violations or unreadable
// inputs, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/check/dcpicheck.h"

int main(int argc, char** argv) {
  using namespace dcpi;
  DcpicheckOptions options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--jobs") == 0 && arg + 1 < argc) {
      options.jobs = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--no-cache") == 0) {
      options.use_cache = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 3) {
    std::fprintf(stderr,
                 "usage: dcpicheck [--jobs N] [--no-cache] <db_root> <epoch> "
                 "<image_file>...\n");
    return 2;
  }
  options.db_root = argv[arg];
  options.epoch = static_cast<uint32_t>(std::atoi(argv[arg + 1]));
  for (int i = arg + 2; i < argc; ++i) options.image_files.push_back(argv[i]);

  CheckReport report = RunDcpicheck(options);
  std::fputs(report.ToString().c_str(), stdout);
  return report.ok() ? 0 : 1;
}
