// dcpicheck CLI: static verification of a profile database + image set.
//
// Usage:
//   dcpicheck <db_root> <epoch> <image_file>...
//
// Runs all five verification passes (image lint, CFG structure,
// differential cycle equivalence, flow conservation, schedule invariants)
// and prints a structured report. Exits 0 when no errors were found,
// 1 on violations or unreadable inputs, 2 on usage errors.

#include <cstdio>
#include <cstdlib>

#include "src/check/dcpicheck.h"

int main(int argc, char** argv) {
  using namespace dcpi;
  if (argc < 4) {
    std::fprintf(stderr, "usage: dcpicheck <db_root> <epoch> <image_file>...\n");
    return 2;
  }
  DcpicheckOptions options;
  options.db_root = argv[1];
  options.epoch = static_cast<uint32_t>(std::atoi(argv[2]));
  for (int i = 3; i < argc; ++i) options.image_files.push_back(argv[i]);

  CheckReport report = RunDcpicheck(options);
  std::fputs(report.ToString().c_str(), stdout);
  return report.ok() ? 0 : 1;
}
