// Figure 3: statistics across eight runs of the wave5-like FP workload.
//
// Paper: wave5's running time varied up to 11% between runs; dcpistats over
// 8 sample sets shows procedure smooth_ with a normalized range (11.32%) an
// order of magnitude above every other procedure (parmvr_ 0.94%, putb_
// 0.68%, ...), fingering it as the variance source. The cause is the
// virtual-to-physical page mapping changing board-cache conflicts.
//
// Expected shape here: the conflict-prone smooth_ procedure tops the
// range% column, well above the stable compute kernels, because each run
// draws a fresh random page colouring.

#include "bench/bench_util.h"
#include "src/tools/dcpistats.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig3_dcpistats: cross-run variance of the wave5-like workload",
              "Figure 3 (Section 3.3)");

  constexpr int kRuns = 8;
  std::vector<ProcedureSamples> sets;
  std::vector<double> cycles;
  for (int run = 0; run < kRuns; ++run) {
    WorkloadFactory factory(/*scale=*/0.5, /*seed=*/run + 1);
    Workload workload = factory.SpecFpLike();
    RunSpec spec;
    spec.mode = ProfilingMode::kCycles;
    spec.period_scale = 1.0 / 16;
    spec.free_profiling = true;
    spec.kernel_seed = static_cast<uint64_t>(run + 1) * 104729;
    spec.rng_seed = static_cast<uint32_t>(run + 1);
    RunOutput out = RunProfiled(workload, spec);
    sets.push_back(SamplesByProcedure(*out.system));
    cycles.push_back(static_cast<double>(out.result.elapsed_cycles));
  }

  double min_c = cycles[0], max_c = cycles[0];
  for (double c : cycles) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  std::printf("running-time spread across %d runs: %.1f%% (paper: up to 11%%)\n\n",
              kRuns, 100.0 * (max_c - min_c) / min_c);

  std::vector<StatsRow> rows = ComputeStats(sets);
  std::fputs(FormatStats(sets, rows, 12).c_str(), stdout);

  // Shape check: smooth_ should have the highest range% among the major
  // procedures (>2% of samples).
  std::string top_major;
  for (const StatsRow& row : rows) {
    if (row.sum_pct > 2.0) {
      top_major = row.procedure;
      break;
    }
  }
  std::printf("\nhighest-variance major procedure: %s (paper: smooth_)\n",
              top_major.c_str());
  return 0;
}
