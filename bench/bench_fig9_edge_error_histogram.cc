// Figure 9: distribution of errors in edge frequencies, weighted by edge
// executions.
//
// Paper: edges never receive samples directly — their frequencies come from
// flow-constraint propagation — so edge estimates are less accurate than
// block estimates: 58% of edge executions within 10%.
//
// Expected shape here: a histogram peaked at 0 but visibly wider than the
// Figure 8 instruction histogram, with a smaller within-10% share.

#include "bench/accuracy_util.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig9_edge_error_histogram: edge frequency estimate errors",
              "Figure 9 (Section 6.2)");

  AccuracyCollector collector;
  for (Workload& workload : AccuracySuite(/*scale=*/0.5, /*seed=*/1)) {
    RunSpec spec;
    spec.mode = ProfilingMode::kDefault;
    spec.period_scale = 1.0 / 16;
    spec.free_profiling = true;
    RunOutput run = RunProfiled(workload, spec);
    CollectAccuracy(*run.system, /*min_samples=*/200, &collector);
  }

  PrintHistogram("edge-frequency error histogram (weight: edge executions)",
                 collector.edge_by_conf, collector.edge_overall);
  std::printf("\npaper: 58%% of edge executions within 10%%\n");
  std::printf("instruction estimates for the same runs: %.0f%% within 10%% "
              "(edges should be noticeably worse)\n",
              100.0 * collector.instr_overall.FractionWithin(10));
  return 0;
}
