// Table 3: overall slowdown (percent) under the three profiling
// configurations.
//
// Paper: with the default 60K-64K CYCLES sampling period, profiling costs
// 1-3% for most workloads across cycles/default/mux configurations, with
// mux slightly above default, and gcc noticeably higher (4-10%) because
// its many short-lived PIDs drive the hash-table eviction rate up.
//
// Expected shape here: low single-digit slowdowns everywhere, ordered
// roughly cycles <= default <= mux, with gcc the clear outlier.

#include "bench/bench_util.h"
#include "src/support/stats.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

namespace {

Workload MakeWorkload(size_t index, uint64_t seed) {
  WorkloadFactory factory(/*scale=*/0.2, seed);
  return factory.Table2Suite()[index];
}

}  // namespace

int main() {
  PrintHeader("bench_table3_slowdown: profiling overhead per configuration",
              "Table 3 (Section 5.1)");

  constexpr int kRepeats = 2;
  const ProfilingMode kModes[] = {ProfilingMode::kCycles, ProfilingMode::kDefault,
                                  ProfilingMode::kMux};

  TextTable table;
  table.SetHeader({"workload", "cycles (%)", "default (%)", "mux (%)"});

  size_t num_workloads = WorkloadFactory(0.2).Table2Suite().size();
  for (size_t w = 0; w < num_workloads; ++w) {
    // Base runtimes, one per seed: slowdowns are computed pairwise against
    // the same-seed base run so workload variance cancels.
    std::vector<double> base(kRepeats);
    std::string name;
    for (int r = 0; r < kRepeats; ++r) {
      Workload workload = MakeWorkload(w, static_cast<uint64_t>(r + 1));
      name = workload.name;
      RunSpec spec;
      spec.kernel_seed = static_cast<uint64_t>(r + 1) * 17;
      RunOutput out = RunProfiled(workload, spec);
      base[r] = static_cast<double>(out.result.elapsed_cycles);
    }

    std::vector<std::string> row = {name};
    for (ProfilingMode mode : kModes) {
      RunningStat slow;
      for (int r = 0; r < kRepeats; ++r) {
        Workload workload = MakeWorkload(w, static_cast<uint64_t>(r + 1));
        RunSpec spec;
        spec.mode = mode;  // paper's sampling periods (no scaling)
        spec.kernel_seed = static_cast<uint64_t>(r + 1) * 17;
        spec.rng_seed = static_cast<uint32_t>(r + 1);
        RunOutput out = RunProfiled(workload, spec);
        slow.Add(100.0 *
                 (static_cast<double>(out.result.busy_cycles_with_daemon) - base[r]) /
                 base[r]);
      }
      row.push_back(TextTable::WithCi(slow.mean(), slow.ci95_halfwidth(), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\npaper: 1-3%% for most workloads; gcc 4-10%% due to its hash eviction rate\n");
  return 0;
}
