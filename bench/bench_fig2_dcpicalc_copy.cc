// Figure 2: dcpicalc analysis of the McCalpin copy loop.
//
// Paper: best-case CPI 0.62 (8 cycles / 13 instructions), actual CPI 10.77;
// large dynamic stalls on stores with culprits dwD (D-cache miss from the
// feeding ldq, write-buffer overflow, DTB miss); an 's' slotting hazard on
// the adjacent stores; dual-issued instructions with 0 samples.
//
// Expected shape here: identical best-case CPI (0.62), a much larger actual
// CPI, the dominant stalls on stq instructions with d/w/D culprits pointing
// at the feeding loads, slotting hazards between adjacent stores.

#include "bench/bench_util.h"
#include "src/tools/dcpicalc.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig2_dcpicalc_copy: instruction-level analysis of the copy loop",
              "Figure 2 (Section 3.2)");

  WorkloadFactory factory(/*scale=*/1.0);
  Workload workload = factory.McCalpin(StreamKernel::kCopy);
  RunSpec spec;
  spec.mode = ProfilingMode::kDefault;
  spec.period_scale = 1.0 / 16;
  spec.free_profiling = true;
  RunOutput run = RunProfiled(workload, spec);

  auto image = workload.processes[0].images[0];
  Result<ProcedureAnalysis> analysis =
      AnalyzeFromSystem(*run.system, *image, "mccalpin_copy");
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::fputs(FormatCalcListing(*image, analysis.value()).c_str(), stdout);

  std::printf("\npaper: best-case 0.62 CPI, actual 10.77 CPI (AlphaStation 500 5/333)\n");
  std::printf("ours:  best-case %.2f CPI, actual %.2f CPI\n",
              analysis.value().best_case_cpi, analysis.value().actual_cpi);
  return 0;
}
