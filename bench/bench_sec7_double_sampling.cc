// Section 7 (future work): double sampling for edge samples.
//
// Paper: "During selected performance counter interrupts, a second
// interrupt is set up to occur immediately after returning from the first,
// providing two PC values along an execution path... directly providing
// edge samples." The paper prototypes this but publishes no numbers.
//
// This bench implements the comparison the proposal implies: for each
// conditional branch, estimate its taken fraction (a) from flow-constraint
// propagation alone (Figure 9's method) and (b) from double-sample pairs,
// and score both against the simulator's exact edge counts.
//
// Expected shape: double sampling is markedly more accurate on branches
// whose two targets are in the same frequency-equivalence blind spot.

#include <cmath>

#include "bench/bench_util.h"
#include "src/support/stats.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_sec7_double_sampling: edge samples vs flow propagation",
              "Section 7 (future work prototype)");

  RunningStat flow_err, edge_err;
  int branches = 0;

  WorkloadFactory factory(/*scale=*/0.6, /*seed=*/1);
  std::vector<Workload> suite;
  suite.push_back(factory.SpecIntLike());
  suite.push_back(factory.BranchHeavy());
  suite.push_back(factory.X11PerfLike());

  for (Workload& workload : suite) {
    SystemConfig config;
    config.kernel.num_cpus = std::max(1u, workload.num_cpus);
    config.mode = ProfilingMode::kCycles;
    config.period_scale = 1.0 / 32;
    config.free_profiling = true;
    config.double_sampling = true;
    System system(config);
    if (!workload.Instantiate(&system).ok()) return 1;
    if (system.Run().had_error) return 1;

    // Merge edge samples from all CPUs.
    PerfCounters::EdgeSampleMap pairs;
    for (uint32_t cpu = 0; cpu < system.kernel().num_cpus(); ++cpu) {
      for (const auto& [key, count] : system.counters(cpu)->edge_samples()) {
        pairs[key] += count;
      }
    }

    for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
      const ImageProfile* cycles =
          system.daemon()->FindProfile(truth.image->name(), EventType::kCycles);
      if (cycles == nullptr) continue;
      for (const ProcedureSymbol& proc : truth.image->procedures()) {
        AnalysisConfig analysis_config;
        Result<ProcedureAnalysis> analysis =
            AnalyzeProcedure(*truth.image, proc, *cycles, nullptr, nullptr, nullptr,
                             nullptr, analysis_config);
        if (!analysis.ok()) continue;
        const Cfg& cfg = analysis.value().cfg;
        uint64_t base = truth.image->text_base();

        for (const BasicBlock& block : cfg.blocks()) {
          uint64_t branch_pc = block.end_pc - kInstrBytes;
          auto inst = Decode(*truth.image->InstructionAt(branch_pc));
          if (inst->klass() != InstrClass::kCondBranch) continue;
          uint64_t target = inst->BranchTarget(branch_pc);

          // Ground truth taken fraction.
          uint64_t exec = truth.instructions[(branch_pc - base) / kInstrBytes].exec_count;
          auto edge_it = truth.edges.find({branch_pc - base, target - base});
          if (exec < 3000 || edge_it == truth.edges.end()) continue;
          double true_taken =
              static_cast<double>(edge_it->second) / static_cast<double>(exec);
          if (true_taken < 0.02 || true_taken > 0.98) continue;  // uninteresting

          // (a) flow propagation: taken edge freq / block freq.
          double flow_taken = -1;
          for (int e : block.out_edges) {
            const CfgEdge& edge = cfg.edges()[e];
            if (!edge.fallthrough && analysis.value().frequencies.block_freq[block.id] > 0) {
              flow_taken = analysis.value().frequencies.edge_freq[e] /
                           analysis.value().frequencies.block_freq[block.id];
            }
          }
          // (b) double samples: classify the pair's second PC by the block
          // it falls in (taken target's block vs fall-through block).
          int target_block = cfg.BlockIndexFor(target);
          int fall_block = cfg.BlockIndexFor(block.end_pc);
          uint64_t pair_taken = 0, pair_fall = 0;
          for (const auto& [key, count] : pairs) {
            auto [pid, from, to] = key;
            (void)pid;
            if (from != branch_pc) continue;
            int to_block = cfg.BlockIndexFor(to);
            if (to_block == target_block) {
              pair_taken += count;
            } else if (to_block == fall_block) {
              pair_fall += count;
            }
          }
          uint64_t pair_total = pair_taken + pair_fall;
          if (pair_total < 20 || flow_taken < 0) continue;
          double ds_taken =
              static_cast<double>(pair_taken) / static_cast<double>(pair_total);

          flow_err.Add(std::fabs(flow_taken - true_taken));
          edge_err.Add(std::fabs(ds_taken - true_taken));
          ++branches;
        }
      }
    }
  }

  std::printf("conditional branches scored: %d\n\n", branches);
  TextTable table;
  table.SetHeader({"method", "mean |taken-fraction error|", "max"});
  table.AddRow({"flow propagation (Fig 9 method)", TextTable::Fixed(flow_err.mean(), 3),
                TextTable::Fixed(flow_err.max(), 3)});
  table.AddRow({"double sampling (Sec 7)", TextTable::Fixed(edge_err.mean(), 3),
                TextTable::Fixed(edge_err.max(), 3)});
  table.Print();
  std::printf("\npaper: proposal only; no published numbers. Shape expectation:\n"
              "double sampling should not be worse, and helps where equivalence\n"
              "classes leave branch biases unconstrained.\n");
  return 0;
}
