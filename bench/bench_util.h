// Shared helpers for the table/figure reproduction benchmarks.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

namespace dcpi {
namespace bench {

struct RunSpec {
  ProfilingMode mode = ProfilingMode::kBase;
  double period_scale = 1.0;  // 1.0 = the paper's 60K-64K CYCLES period
  // Analysis benches densify sampling to emulate long runs; they zero the
  // handler cost so the denser interrupts do not distort the timing they
  // are trying to measure (see SystemConfig::free_profiling).
  bool free_profiling = false;
  uint32_t num_cpus = 0;      // 0 = workload default
  uint64_t kernel_seed = 1;
  uint32_t rng_seed = 1;
  std::string db_root;
  // Collection-path configuration, so the before/after benches can pit the
  // shipped Section 5.4 defaults against the 1997 baseline
  // (HashTableConfig::Legacy() + batched_ingest = false).
  DriverConfig driver;
  DaemonConfig daemon;
  double mem_fraction = 0.0;  // fraction of samples taken as wide records
};

struct RunOutput {
  std::unique_ptr<System> system;
  SystemResult result;
};

inline RunOutput RunProfiled(const Workload& workload, const RunSpec& spec) {
  RunOutput output;
  SystemConfig config;
  config.kernel.num_cpus = spec.num_cpus != 0 ? spec.num_cpus
                                              : std::max(1u, workload.num_cpus);
  config.kernel.seed = spec.kernel_seed;
  config.mode = spec.mode;
  config.period_scale = spec.period_scale;
  config.free_profiling = spec.free_profiling;
  config.rng_seed = spec.rng_seed;
  config.db_root = spec.db_root;
  config.driver = spec.driver;
  config.daemon = spec.daemon;
  config.mem_fraction = spec.mem_fraction;
  output.system = std::make_unique<System>(config);
  Status status = workload.Instantiate(output.system.get());
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: workload %s failed to instantiate: %s\n",
                 workload.name.c_str(), status.ToString().c_str());
    std::exit(1);
  }
  output.result = output.system->Run();
  if (output.result.had_error) {
    std::fprintf(stderr, "FATAL: workload %s had a process error\n",
                 workload.name.c_str());
    std::exit(1);
  }
  return output;
}

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==================================================================\n\n");
}

}  // namespace bench
}  // namespace dcpi

#endif  // BENCH_BENCH_UTIL_H_
