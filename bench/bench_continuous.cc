// Continuous-operation overhead: what an always-on profiling session pays
// over batch collection, and what an epoch roll costs when the image map
// changes.
//
// The paper's daemon runs indefinitely (Section 4): profiles flush
// periodically and epochs seal whenever the load map changes, so the
// offline tools can read a growing database mid-run. Both mechanisms do
// host-side work (profile snapshots, atomic renames, epoch bookkeeping)
// that batch collection skips; this bench measures them directly.
//
// Two measurements over the same instruction stream:
//   - roll latency: wall-clock of System::RollEpoch() (driver drain, flush
//     of every dirty profile, seal marker, epoch advance, count reset),
//     reported per roll across `segments - 1` rolls.
//   - steady-state overhead: wall-clock of the continuous run (periodic
//     timed flushes + one roll per segment) vs a batch run with identical
//     segment boundaries and a single shutdown flush.
//
// Gate (skipped under --smoke): continuous <= 2x batch wall-clock. The
// simulated instruction streams are identical by construction, so the
// ratio isolates the host-side flush/seal cost.
//
// Emits machine-readable BENCH_continuous.json in the working directory.
// --smoke shrinks the run to seconds-scale (CI / sanitizer jobs):
// correctness checks stay, the perf gate is skipped.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/profiledb/database.h"
#include "src/sim/system.h"
#include "src/workloads/workloads.h"

using namespace dcpi;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ContinuousRun {
  double wall_ms = 0;
  std::vector<double> roll_ms;  // one entry per epoch roll
  uint64_t samples = 0;
  size_t sealed_epochs = 0;
};

// Runs `segments` fresh instantiations of the workload. With rolls
// enabled, the epoch is rolled (timed) between segments; the flush
// interval drives periodic mid-run flushes in both cases where set.
ContinuousRun RunSegmented(const Workload& workload, const std::string& db_root,
                           int segments, bool continuous) {
  Workload instance = workload;
  SystemConfig config;
  config.kernel.num_cpus = 1;
  config.mode = ProfilingMode::kCycles;
  config.period_scale = 1.0 / 16;
  config.db_root = db_root;
  if (continuous) {
    config.daemon_flush_interval = config.daemon_drain_interval / 4;
  }
  System system(config);

  ContinuousRun run;
  auto start = std::chrono::steady_clock::now();
  for (int segment = 0; segment < segments; ++segment) {
    Status status = instance.Instantiate(&system);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: instantiate failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    SystemResult result = system.Run();
    if (result.had_error) {
      std::fprintf(stderr, "FATAL: workload had a process error\n");
      std::exit(1);
    }
    run.samples = result.samples[static_cast<int>(EventType::kCycles)];
    if (continuous && segment + 1 < segments) {
      auto roll_start = std::chrono::steady_clock::now();
      Status rolled = system.RollEpoch();
      run.roll_ms.push_back(MsSince(roll_start));
      if (!rolled.ok()) {
        std::fprintf(stderr, "FATAL: roll failed: %s\n",
                     rolled.ToString().c_str());
        std::exit(1);
      }
    }
  }
  Status sealed = system.SealCurrentEpoch();
  if (!sealed.ok()) {
    std::fprintf(stderr, "FATAL: seal failed: %s\n", sealed.ToString().c_str());
    std::exit(1);
  }
  run.wall_ms = MsSince(start);
  ProfileDatabase db(db_root, DbOpenMode::kReadOnly);
  run.sealed_epochs = db.ListSealedEpochs().size();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_continuous [--smoke]\n");
      return 2;
    }
  }

  const std::string root = "/tmp/dcpi_bench_continuous";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const int segments = smoke ? 3 : 8;
  WorkloadFactory factory(/*scale=*/smoke ? 0.25 : 1.0);
  Workload workload = factory.SpecIntLike();

  ContinuousRun batch =
      RunSegmented(workload, root + "/batch", segments, /*continuous=*/false);
  ContinuousRun cont =
      RunSegmented(workload, root + "/cont", segments, /*continuous=*/true);

  // Identical simulations: continuous collection must not change what was
  // collected, only when it reached disk.
  if (cont.samples != batch.samples) {
    std::fprintf(stderr, "FATAL: sample totals diverged (%llu vs %llu)\n",
                 static_cast<unsigned long long>(cont.samples),
                 static_cast<unsigned long long>(batch.samples));
    return 1;
  }
  if (cont.sealed_epochs != static_cast<size_t>(segments) ||
      batch.sealed_epochs != 1) {
    std::fprintf(stderr, "FATAL: unexpected epoch layout (%zu vs %zu)\n",
                 cont.sealed_epochs, batch.sealed_epochs);
    return 1;
  }

  double roll_mean = 0, roll_max = 0;
  for (double ms : cont.roll_ms) {
    roll_mean += ms;
    if (ms > roll_max) roll_max = ms;
  }
  if (!cont.roll_ms.empty()) roll_mean /= static_cast<double>(cont.roll_ms.size());
  const double overhead = batch.wall_ms > 0 ? cont.wall_ms / batch.wall_ms : 0;

  std::printf("continuous collection vs batch (%d segments, %zu rolls)\n",
              segments, cont.roll_ms.size());
  std::printf("  batch wall:       %8.1f ms (1 sealed epoch)\n", batch.wall_ms);
  std::printf("  continuous wall:  %8.1f ms (%zu sealed epochs)\n",
              cont.wall_ms, cont.sealed_epochs);
  std::printf("  steady-state overhead: %.2fx\n", overhead);
  std::printf("  epoch roll latency: mean %.3f ms, max %.3f ms\n", roll_mean,
              roll_max);

  bool ok = true;
  if (smoke) {
    std::printf("overhead gate skipped: --smoke\n");
  } else if (overhead > 2.0) {
    std::printf("FAIL: continuous overhead %.2fx exceeds 2x gate\n", overhead);
    ok = false;
  } else {
    std::printf("PASS: continuous overhead %.2fx within 2x gate\n", overhead);
  }

  std::ofstream json("BENCH_continuous.json");
  json << "{\n"
       << "  \"bench\": \"continuous\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"segments\": " << segments << ",\n"
       << "  \"samples\": " << cont.samples << ",\n"
       << "  \"batch_wall_ms\": " << batch.wall_ms << ",\n"
       << "  \"continuous_wall_ms\": " << cont.wall_ms << ",\n"
       << "  \"steady_state_overhead\": " << overhead << ",\n"
       << "  \"epoch_rolls\": " << cont.roll_ms.size() << ",\n"
       << "  \"roll_latency_mean_ms\": " << roll_mean << ",\n"
       << "  \"roll_latency_max_ms\": " << roll_max << ",\n"
       << "  \"sealed_epochs\": " << cont.sealed_epochs << ",\n"
       << "  \"gate_passed\": " << (ok ? "true" : "false") << "\n"
       << "}\n";

  std::filesystem::remove_all(root);
  return ok ? 0 : 1;
}
