// Figure 4: summary of how cycles are spent in the `smooth` procedure.
//
// Paper: for wave5's smooth_, the summary attributes 27.9% of cycles to
// D-cache misses, 9.2-18.3% to DTB misses, 0-6.3% to write buffer,
// small static subtotals (slotting 1.8%, Ra 2.0%, Rb 1.0%), execution
// 51.2%, with a min..max range per dynamic cause.
//
// Expected shape here: smooth_ is memory-system bound — D-cache, DTB, and
// write-buffer are the dominant dynamic causes (as ranges), static stalls
// are a small fraction, and the total tallies to ~100%.

#include "bench/bench_util.h"
#include "src/tools/dcpicalc.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig4_stall_summary: cycle breakdown for the smooth_ procedure",
              "Figure 4 (Section 3.3)");

  WorkloadFactory factory(/*scale=*/1.0);
  Workload workload = factory.SpecFpLike();
  RunSpec spec;
  spec.mode = ProfilingMode::kDefault;  // IMISS samples bound the I-cache rows
  spec.period_scale = 1.0 / 16;
    spec.free_profiling = true;
  RunOutput run = RunProfiled(workload, spec);

  auto image = workload.processes[0].images[0];
  Result<ProcedureAnalysis> analysis = AnalyzeFromSystem(*run.system, *image, "smooth_");
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::fputs(FormatStallSummary(analysis.value()).c_str(), stdout);

  const StallSummary& s = analysis.value().summary;
  double memory_system =
      s.dynamic_max_pct[static_cast<int>(CulpritKind::kDcache)] +
      s.dynamic_max_pct[static_cast<int>(CulpritKind::kDtb)] +
      s.dynamic_max_pct[static_cast<int>(CulpritKind::kWriteBuffer)];
  std::printf("\npaper: D-cache 27.9%%, DTB 9.2-18.3%%, write buffer 0-6.3%%, "
              "static subtotal 4.8%%, execution 51.2%%\n");
  std::printf("ours:  memory-system upper bound %.1f%%, static subtotal %.1f%%, "
              "execution %.1f%%\n",
              memory_system, s.subtotal_static(), s.execution_pct);
  return 0;
}
