// Figure 10: correlation between I-cache miss stall cycles (as attributed
// by the culprit analysis) and IMISS event counts, per procedure.
//
// Paper: over 1310 SPEC95 procedures, the top/bottom/midpoint of the
// I-cache stall-cycle range correlate with IMISS events at r = 0.91 / 0.86
// / 0.90 — indirect evidence that the culprit analysis is attributing
// stalls to the right cause.
//
// Expected shape here: strong positive correlation between per-procedure
// IMISS events and attributed I-cache stall cycles (upper bound and
// midpoint), using the I-cache-stress and mixed workloads to spread the
// x-axis.

#include "bench/bench_util.h"
#include "src/support/stats.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig10_imiss_correlation: I-cache stall attribution vs IMISS",
              "Figure 10 (Section 6.3)");

  std::vector<double> imiss_events, stall_top, stall_bottom;

  WorkloadFactory factory(/*scale=*/0.5, /*seed=*/1);
  std::vector<Workload> suite;
  suite.push_back(factory.IcacheStress());
  suite.push_back(factory.SpecIntLike());
  suite.push_back(factory.SpecFpLike());
  suite.push_back(factory.X11PerfLike());
  suite.push_back(factory.GccLike(4));

  for (Workload& workload : suite) {
    RunSpec spec;
    spec.mode = ProfilingMode::kDefault;  // IMISS monitored
    spec.period_scale = 1.0 / 16;
    spec.free_profiling = true;
    RunOutput run = RunProfiled(workload, spec);

    for (const ImageTruth& truth : run.system->kernel().ground_truth().images()) {
      const ImageProfile* cycles =
          run.system->daemon()->FindProfile(truth.image->name(), EventType::kCycles);
      const ImageProfile* imiss =
          run.system->daemon()->FindProfile(truth.image->name(), EventType::kImiss);
      if (cycles == nullptr) continue;
      for (const ProcedureSymbol& proc : truth.image->procedures()) {
        AnalysisConfig config;
        Result<ProcedureAnalysis> analysis = AnalyzeProcedure(
            *truth.image, proc, *cycles, imiss, nullptr, nullptr, nullptr, config);
        if (!analysis.ok()) continue;
        double proc_samples = 0;
        double icache_top = 0, icache_bottom = 0;
        for (const InstructionAnalysis& ia : analysis.value().instructions) {
          proc_samples += static_cast<double>(ia.samples);
          if (ia.dynamic_stall <= 0 || ia.frequency <= 0) continue;
          double stall_cycles = ia.dynamic_stall * ia.frequency;
          if (ia.culprits[static_cast<int>(CulpritKind::kIcache)]) {
            icache_top += stall_cycles;
            int candidates = 0;
            for (bool c : ia.culprits) candidates += c;
            if (candidates == 1) {
              icache_bottom += stall_cycles;
            } else {
              icache_bottom += ia.icache_floor_cycles;  // IMISS-derived floor
            }
          }
        }
        if (proc_samples < 100) continue;
        // True IMISS events in the procedure (ground truth).
        double events = 0;
        for (uint64_t off = proc.start - truth.image->text_base();
             off < proc.end - truth.image->text_base(); off += kInstrBytes) {
          events += static_cast<double>(
              truth.instructions[off / kInstrBytes].imiss_events);
        }
        imiss_events.push_back(events);
        stall_top.push_back(icache_top);
        stall_bottom.push_back(icache_bottom);
      }
    }
  }

  std::vector<double> midpoint(stall_top.size());
  for (size_t i = 0; i < stall_top.size(); ++i) {
    midpoint[i] = 0.5 * (stall_top[i] + stall_bottom[i]);
  }
  std::printf("procedures: %zu\n\n", imiss_events.size());
  TextTable table;
  table.SetHeader({"series", "correlation with IMISS events", "paper"});
  table.AddRow({"top of range",
                TextTable::Fixed(PearsonCorrelation(imiss_events, stall_top), 3), "0.91"});
  table.AddRow({"bottom of range",
                TextTable::Fixed(PearsonCorrelation(imiss_events, stall_bottom), 3),
                "0.86"});
  table.AddRow({"midpoint",
                TextTable::Fixed(PearsonCorrelation(imiss_events, midpoint), 3), "0.90"});
  table.Print();

  std::printf("\nscatter (IMISS events vs attributed I-cache stall-cycle range):\n");
  for (size_t i = 0; i < imiss_events.size(); ++i) {
    if (imiss_events[i] < 1 && stall_top[i] < 1) continue;
    std::printf("  imiss=%10.0f  stall=[%10.0f, %10.0f]\n", imiss_events[i],
                stall_bottom[i], stall_top[i]);
  }
  return 0;
}
