// Table 4: time overhead components, before/after the Section 5.4 winners.
//
// Paper: per workload and configuration — the hash-table miss rate, the
// average interrupt cost split by hit/miss, and the per-sample daemon cost.
// Low-eviction workloads (specfp, AltaVista) have cheap interrupts AND
// cheap daemon processing (aggregation amortizes); gcc's 38-44% miss rate
// drives both up (551-667 avg interrupt cycles, 781-982 daemon cycles per
// sample). Section 5.4 projects that 6-way swap-to-front lines cut that
// overhead 10-20%; this repo ships them (plus batched daemon ingest) as
// the default, so every workload runs twice here — the 1997 baseline
// (4-way mod-counter, per-sample ingest) vs the shipped default — and the
// delta columns attribute exactly where the cycles went.
//
// Expected shape: gcc's miss rate an order of magnitude above the quiet
// workloads in both configurations, and the shipped default strictly
// cheaper on gcc's miss path and on per-sample daemon cost. Those two
// orderings are enforced as gates (exit 1), and the numbers are written to
// BENCH_table4.json. --smoke shrinks the workloads and runs the default
// configuration only (CI-sized; the gates still apply).

#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

namespace {

struct ConfigOutcome {
  double miss_rate = 0;
  double avg_intr = 0;        // cycles per interrupt
  uint64_t miss_path = 0;     // total miss-path handler cycles
  double daemon_per_sample = 0;
  uint64_t interrupts = 0;
};

ConfigOutcome RunOne(const Workload& workload, ProfilingMode mode, bool legacy,
                     double period_scale = 1.0 / 16) {
  RunSpec spec;
  spec.mode = mode;
  // Denser sampling warms the hash table into its steady state (the
  // paper's week-long runs); the per-sample costs are rate-independent.
  spec.period_scale = period_scale;
  if (legacy) {
    spec.driver.hash = HashTableConfig::Legacy();
    spec.daemon.batched_ingest = false;
  }
  RunOutput out = RunProfiled(workload, spec);
  const DriverCpuStats& driver = out.result.driver_total;
  const DaemonStats& daemon = out.result.daemon;
  ConfigOutcome outcome;
  outcome.miss_rate = driver.MissRate();
  outcome.avg_intr = driver.AvgInterruptCost();
  outcome.miss_path = driver.miss_path_cycles;
  outcome.interrupts = driver.interrupts;
  outcome.daemon_per_sample =
      driver.interrupts == 0 ? 0
                             : static_cast<double>(daemon.daemon_cycles) /
                                   static_cast<double>(driver.interrupts);
  return outcome;
}

std::string Arrow(double legacy, double shipped, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f -> %.*f", digits, legacy, digits,
                shipped);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_table4_overhead_components [--smoke]\n");
      return 2;
    }
  }
  PrintHeader("bench_table4_overhead_components: interrupt + daemon cost breakdown",
              "Table 4 (Section 5.2) + Section 5.4 before/after");

  const double scale = smoke ? 0.05 : 0.2;
  std::vector<ProfilingMode> modes = {ProfilingMode::kDefault};
  if (!smoke) {
    modes.push_back(ProfilingMode::kCycles);
    modes.push_back(ProfilingMode::kMux);
  }

  // gcc numbers from the default configuration, for the JSON + gates.
  ConfigOutcome gcc_legacy, gcc_shipped;
  bool saw_gcc = false;

  for (ProfilingMode mode : modes) {
    std::printf("--- configuration: %s (legacy -> shipped default) ---\n",
                ProfilingModeName(mode));
    TextTable table;
    table.SetHeader({"workload", "miss rate %", "avg intr (cy)",
                     "miss-path (kcy)", "daemon cy/sample", "samples"});
    size_t num_workloads = WorkloadFactory(scale).Table2Suite().size();
    for (size_t w = 0; w < num_workloads; ++w) {
      // A fresh factory per run: Instantiate consumes workload state.
      WorkloadFactory legacy_factory(scale, /*seed=*/1);
      ConfigOutcome legacy =
          RunOne(legacy_factory.Table2Suite()[w], mode, /*legacy=*/true);
      WorkloadFactory shipped_factory(scale, /*seed=*/1);
      Workload workload = shipped_factory.Table2Suite()[w];
      ConfigOutcome shipped = RunOne(workload, mode, /*legacy=*/false);
      if (mode == ProfilingMode::kDefault && workload.name == "gcc") {
        gcc_legacy = legacy;
        gcc_shipped = shipped;
        saw_gcc = true;
      }
      table.AddRow({workload.name,
                    Arrow(100.0 * legacy.miss_rate, 100.0 * shipped.miss_rate, 1),
                    Arrow(legacy.avg_intr, shipped.avg_intr, 0),
                    Arrow(legacy.miss_path / 1000.0, shipped.miss_path / 1000.0, 0),
                    Arrow(legacy.daemon_per_sample, shipped.daemon_per_sample, 0),
                    std::to_string(shipped.interrupts)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("paper (default config, shipped 1997 table): specfp 1.4%% miss / 437 cy "
              "intr / 95 cy daemon;\n");
  std::printf("gcc 44.5%% miss / 550 cy intr / 927 cy daemon; Section 5.4 projects "
              "10-20%% less with 6-way + swap-to-front\n");

  if (!saw_gcc) {
    std::fprintf(stderr, "FATAL: gcc workload missing from Table 2 suite\n");
    return 1;
  }

  // Section 5.4 pressure run: at the 1/16 sampling density the scaled-down
  // gcc run barely fills the 16K/24K-entry tables between drains — misses
  // are first-touch and no policy can move them. The paper's week-long
  // tables live under capacity pressure; emulate that with much denser
  // CYCLES-only sampling (the same trick the trace-driven ablation uses;
  // CYCLES-only because scaling the IMISS period down this far would make
  // interrupts near-continuous), where the shipped design's extra ways +
  // swap-to-front measurably cut the gcc miss path. These are the numbers
  // the gate and the JSON report.
  std::printf("\n--- Section 5.4 pressure run: gcc, dense sampling "
              "(legacy -> shipped default) ---\n");
  ConfigOutcome pressure_legacy, pressure_shipped;
  {
    const double dense = 1.0 / 128;
    WorkloadFactory legacy_factory(scale, /*seed=*/1);
    pressure_legacy = RunOne(legacy_factory.GccLike(), ProfilingMode::kCycles,
                             /*legacy=*/true, dense);
    WorkloadFactory shipped_factory(scale, /*seed=*/1);
    pressure_shipped = RunOne(shipped_factory.GccLike(), ProfilingMode::kCycles,
                              /*legacy=*/false, dense);
    TextTable table;
    table.SetHeader({"metric", "legacy (1997)", "shipped default"});
    table.AddRow({"miss rate %", TextTable::Percent(100.0 * pressure_legacy.miss_rate, 1),
                  TextTable::Percent(100.0 * pressure_shipped.miss_rate, 1)});
    table.AddRow({"avg intr (cy)", TextTable::Fixed(pressure_legacy.avg_intr, 0),
                  TextTable::Fixed(pressure_shipped.avg_intr, 0)});
    table.AddRow({"miss-path (kcy)",
                  TextTable::Fixed(pressure_legacy.miss_path / 1000.0, 0),
                  TextTable::Fixed(pressure_shipped.miss_path / 1000.0, 0)});
    table.AddRow({"daemon cy/sample",
                  TextTable::Fixed(pressure_legacy.daemon_per_sample, 0),
                  TextTable::Fixed(pressure_shipped.daemon_per_sample, 0)});
    table.Print();
  }

  // Gates: under pressure the shipped default must not regress the gcc
  // miss path (the exact cycles Section 5.4 targets), and the batched
  // daemon must not regress per-sample cost at the paper-comparable rate.
  bool miss_path_ok = pressure_shipped.miss_path <= pressure_legacy.miss_path;
  bool daemon_ok = gcc_shipped.daemon_per_sample <= gcc_legacy.daemon_per_sample;

  char json[1536];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"table4_overhead_components\",\n"
                "  \"smoke\": %s,\n"
                "  \"gcc_default_config\": {\n"
                "    \"legacy\": {\"miss_rate\": %.4f, \"avg_intr_cycles\": %.1f,\n"
                "               \"miss_path_cycles\": %llu, \"daemon_cycles_per_sample\": %.1f},\n"
                "    \"shipped\": {\"miss_rate\": %.4f, \"avg_intr_cycles\": %.1f,\n"
                "                \"miss_path_cycles\": %llu, \"daemon_cycles_per_sample\": %.1f}\n"
                "  },\n"
                "  \"gcc_sec54_pressure\": {\n"
                "    \"legacy\": {\"miss_rate\": %.4f, \"miss_path_cycles\": %llu},\n"
                "    \"shipped\": {\"miss_rate\": %.4f, \"miss_path_cycles\": %llu}\n"
                "  },\n"
                "  \"gate_miss_path_not_worse\": %s,\n"
                "  \"gate_daemon_cost_not_worse\": %s\n"
                "}\n",
                smoke ? "true" : "false", gcc_legacy.miss_rate, gcc_legacy.avg_intr,
                static_cast<unsigned long long>(gcc_legacy.miss_path),
                gcc_legacy.daemon_per_sample, gcc_shipped.miss_rate,
                gcc_shipped.avg_intr,
                static_cast<unsigned long long>(gcc_shipped.miss_path),
                gcc_shipped.daemon_per_sample, pressure_legacy.miss_rate,
                static_cast<unsigned long long>(pressure_legacy.miss_path),
                pressure_shipped.miss_rate,
                static_cast<unsigned long long>(pressure_shipped.miss_path),
                miss_path_ok ? "true" : "false", daemon_ok ? "true" : "false");
  std::ofstream("BENCH_table4.json") << json;
  std::printf("\nwrote BENCH_table4.json\n");

  if (!miss_path_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: shipped gcc miss-path cycles %llu > legacy %llu "
                 "(pressure run)\n",
                 static_cast<unsigned long long>(pressure_shipped.miss_path),
                 static_cast<unsigned long long>(pressure_legacy.miss_path));
    return 1;
  }
  if (!daemon_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: shipped gcc daemon cy/sample %.1f > legacy %.1f\n",
                 gcc_shipped.daemon_per_sample, gcc_legacy.daemon_per_sample);
    return 1;
  }
  std::printf("gates passed: gcc miss-path and daemon cost not worse than legacy\n");
  return 0;
}
