// Table 4: time overhead components.
//
// Paper: per workload and configuration — the hash-table miss rate, the
// average interrupt cost split by hit/miss, and the per-sample daemon cost.
// Low-eviction workloads (specfp, AltaVista) have cheap interrupts AND
// cheap daemon processing (aggregation amortizes); gcc's 38-44% miss rate
// drives both up (551-667 avg interrupt cycles, 781-982 daemon cycles per
// sample).
//
// Expected shape here: the same ordering — gcc's miss rate an order of
// magnitude above the quiet workloads, and its per-sample daemon cost the
// highest in each configuration.

#include "bench/bench_util.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_table4_overhead_components: interrupt + daemon cost breakdown",
              "Table 4 (Section 5.2)");

  const ProfilingMode kModes[] = {ProfilingMode::kCycles, ProfilingMode::kDefault,
                                  ProfilingMode::kMux};

  for (ProfilingMode mode : kModes) {
    std::printf("--- configuration: %s ---\n", ProfilingModeName(mode));
    TextTable table;
    table.SetHeader({"workload", "miss rate", "avg intr cost (cy)",
                     "daemon cost/sample (cy)", "samples"});
    size_t num_workloads = WorkloadFactory(0.2).Table2Suite().size();
    for (size_t w = 0; w < num_workloads; ++w) {
      WorkloadFactory factory(/*scale=*/0.2, /*seed=*/1);
      Workload workload = factory.Table2Suite()[w];
      RunSpec spec;
      spec.mode = mode;
      // Denser sampling warms the hash table into its steady state (the
      // paper's week-long runs); the per-sample costs are rate-independent.
      spec.period_scale = 1.0 / 16;
      RunOutput out = RunProfiled(workload, spec);
      const DriverCpuStats& driver = out.result.driver_total;
      const DaemonStats& daemon = out.result.daemon;
      double per_sample_daemon =
          driver.interrupts == 0
              ? 0
              : static_cast<double>(daemon.daemon_cycles) /
                    static_cast<double>(driver.interrupts);
      table.AddRow({workload.name, TextTable::Percent(100.0 * driver.MissRate(), 1),
                    TextTable::Fixed(driver.AvgInterruptCost(), 0),
                    TextTable::Fixed(per_sample_daemon, 0),
                    std::to_string(driver.interrupts)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("paper (default config): specfp 1.4%% miss / 437 cy intr / 95 cy daemon;\n");
  std::printf("gcc 44.5%% miss / 550 cy intr / 927 cy daemon\n");
  return 0;
}
