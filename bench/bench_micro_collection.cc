// Microbenchmarks (google-benchmark) for the collection hot paths: the
// interrupt handler's hash-table record, the Carta period randomizer, the
// daemon's PC-to-image resolution, and profile serialization.
//
// These are host-time measurements of the real data structures; the paper's
// cycle costs (Table 4) are modelled separately, but the *ratios* (hit vs
// miss, aggregation benefit) should echo here.

#include <benchmark/benchmark.h>

#include "src/driver/hash_table.h"
#include "src/profiledb/database.h"
#include "src/support/rng.h"

namespace dcpi {
namespace {

void BM_CartaRngNext(benchmark::State& state) {
  CartaRng rng(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInRange(60 * 1024, 64 * 1024));
  }
}
BENCHMARK(BM_CartaRngNext);

void BM_HashTableRecordHit(benchmark::State& state) {
  SampleHashTable table(HashTableConfig{});
  SampleKey key{42, 0x120001000, EventType::kCycles};
  table.Record(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Record(key));
  }
}
BENCHMARK(BM_HashTableRecordHit);

void BM_HashTableRecordMissStream(benchmark::State& state) {
  // Streaming distinct keys: every access misses and (once warm) evicts,
  // the gcc-like worst case.
  SampleHashTable table(HashTableConfig{});
  uint64_t pc = 0;
  for (auto _ : state) {
    SampleKey key{static_cast<uint32_t>(pc >> 18), 0x120000000 + (pc << 2),
                  EventType::kCycles};
    benchmark::DoNotOptimize(table.Record(key));
    ++pc;
  }
}
BENCHMARK(BM_HashTableRecordMissStream);

void BM_HashTableRecordLocalitySet(benchmark::State& state) {
  // A working set matching real workload locality (the paper's 20x
  // aggregation): a few hundred hot PCs.
  SampleHashTable table(HashTableConfig{});
  SplitMix64 rng(7);
  std::vector<SampleKey> keys;
  for (int i = 0; i < 400; ++i) {
    keys.push_back({7, 0x120000000 + rng.NextBelow(4096) * 4, EventType::kCycles});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Record(keys[i++ % keys.size()]));
  }
  state.counters["miss_rate"] = table.stats().MissRate();
}
BENCHMARK(BM_HashTableRecordLocalitySet);

void BM_ProfileSerializeVarint(benchmark::State& state) {
  ImageProfile profile("bench", EventType::kCycles, 62000);
  SplitMix64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    profile.AddSamples(rng.NextBelow(65536) * 4, 1 + rng.NextBelow(1000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeProfile(profile));
  }
  state.counters["bytes"] = static_cast<double>(SerializeProfile(profile).size());
  state.counters["fixed_bytes"] =
      static_cast<double>(SerializeProfileFixedWidth(profile).size());
}
BENCHMARK(BM_ProfileSerializeVarint);

}  // namespace
}  // namespace dcpi

BENCHMARK_MAIN();
