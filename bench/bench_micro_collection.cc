// Microbenchmarks (google-benchmark) for the collection hot paths: the
// interrupt handler's hash-table record, the Carta period randomizer, the
// daemon's PC-to-image resolution, and profile serialization.
//
// These are host-time measurements of the real data structures; the paper's
// cycle costs (Table 4) are modelled separately, but the *ratios* (hit vs
// miss, aggregation benefit) should echo here.

#include <benchmark/benchmark.h>

#include "src/daemon/daemon.h"
#include "src/driver/hash_table.h"
#include "src/isa/assembler.h"
#include "src/profiledb/database.h"
#include "src/support/rng.h"

namespace dcpi {
namespace {

void BM_CartaRngNext(benchmark::State& state) {
  CartaRng rng(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInRange(60 * 1024, 64 * 1024));
  }
}
BENCHMARK(BM_CartaRngNext);

void BM_HashTableRecordHit(benchmark::State& state) {
  SampleHashTable table(HashTableConfig{});
  SampleKey key{42, 0x120001000, EventType::kCycles};
  table.Record(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Record(key));
  }
}
BENCHMARK(BM_HashTableRecordHit);

void BM_HashTableRecordMissStream(benchmark::State& state) {
  // Streaming distinct keys: every access misses and (once warm) evicts,
  // the gcc-like worst case.
  SampleHashTable table(HashTableConfig{});
  uint64_t pc = 0;
  for (auto _ : state) {
    SampleKey key{static_cast<uint32_t>(pc >> 18), 0x120000000 + (pc << 2),
                  EventType::kCycles};
    benchmark::DoNotOptimize(table.Record(key));
    ++pc;
  }
}
BENCHMARK(BM_HashTableRecordMissStream);

void BM_HashTableRecordLocalitySet(benchmark::State& state) {
  // A working set matching real workload locality (the paper's 20x
  // aggregation): a few hundred hot PCs.
  SampleHashTable table(HashTableConfig{});
  SplitMix64 rng(7);
  std::vector<SampleKey> keys;
  for (int i = 0; i < 400; ++i) {
    keys.push_back({7, 0x120000000 + rng.NextBelow(4096) * 4, EventType::kCycles});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Record(keys[i++ % keys.size()]));
  }
  state.counters["miss_rate"] = table.stats().MissRate();
}
BENCHMARK(BM_HashTableRecordLocalitySet);

// Replacement-policy head-to-head on a hot-skewed stream under pressure:
// the same key mix through the shipped default (6-way swap-to-front) and
// the 1997 baseline (4-way mod-counter). Swap-to-front's win shows up in
// the probe_depth counter (hot keys migrate to the line head) and the
// miss_rate counter (two extra ways absorb the gcc-style key churn).
void BM_HashTableRecordPolicy(benchmark::State& state) {
  HashTableConfig config =
      state.range(0) == 0 ? HashTableConfig{} : HashTableConfig::Legacy();
  config.buckets = 256;  // small table: real eviction pressure
  SampleHashTable table(config);
  SplitMix64 rng(21);
  std::vector<SampleKey> keys;
  for (int i = 0; i < 8192; ++i) {
    // 70% of traffic over 64 hot keys, the rest over a churning tail.
    uint64_t pc = rng.NextBelow(10) < 7 ? rng.NextBelow(64) * 4
                                        : 0x1000 + rng.NextBelow(16384) * 4;
    keys.push_back({1 + static_cast<uint32_t>(rng.NextBelow(8)),
                    0x120000000 + pc, EventType::kCycles});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Record(keys[i++ % keys.size()]));
  }
  state.SetLabel(state.range(0) == 0 ? "6way_swap_default" : "4way_mod_legacy");
  state.counters["miss_rate"] = table.stats().MissRate();
  state.counters["probe_depth"] = table.stats().AvgProbeDepth();
}
BENCHMARK(BM_HashTableRecordPolicy)->Arg(0)->Arg(1);

// Daemon ingest head-to-head: one drained overflow buffer of 4096 records
// through the batched staging path vs the legacy per-record path. The
// batched path pays the profile-map lookup and merge-lock round trip once
// per (image, event) group instead of once per record.
void BM_DaemonIngestBuffer(benchmark::State& state) {
  DaemonConfig config;
  config.batched_ingest = state.range(0) == 0;
  Daemon daemon(nullptr, nullptr, {}, config);
  std::string source;
  for (int i = 0; i < 1024; ++i) source += "nop\n";
  source += "halt\n";
  std::vector<LoaderEvent> events;
  events.push_back(
      {LoaderEvent::Kind::kLoadImage, 7, Assemble("libhot", 0x0100'0000, source).value()});
  events.push_back(
      {LoaderEvent::Kind::kLoadImage, 7, Assemble("libcold", 0x0200'0000, source).value()});
  daemon.ProcessLoaderEvents(std::move(events));
  SplitMix64 rng(33);
  std::vector<SampleRecord> records;
  for (int i = 0; i < 4096; ++i) {
    uint64_t base = rng.NextBelow(4) == 0 ? 0x0200'0000 : 0x0100'0000;
    records.push_back({{7, base + rng.NextBelow(1024) * 4,
                        rng.NextBelow(8) == 0 ? EventType::kImiss : EventType::kCycles},
                       1 + rng.NextBelow(20)});
  }
  for (auto _ : state) {
    daemon.ProcessBuffer(0, records);
  }
  state.SetLabel(state.range(0) == 0 ? "batched" : "per_sample_legacy");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_DaemonIngestBuffer)->Arg(0)->Arg(1);

void BM_ProfileSerializeVarint(benchmark::State& state) {
  ImageProfile profile("bench", EventType::kCycles, 62000);
  SplitMix64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    profile.AddSamples(rng.NextBelow(65536) * 4, 1 + rng.NextBelow(1000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeProfile(profile));
  }
  state.counters["bytes"] = static_cast<double>(SerializeProfile(profile).size());
  state.counters["fixed_bytes"] =
      static_cast<double>(SerializeProfileFixedWidth(profile).size());
}
BENCHMARK(BM_ProfileSerializeVarint);

}  // namespace
}  // namespace dcpi

BENCHMARK_MAIN();
