// Figure 7: estimating the frequency of the copy loop.
//
// Paper: for the Figure 2 loop, the M_i column (1 0 1 0 1 0 1 0 1 1 1 0 1),
// the S_i/M_i ratio per issue point, and the heuristic's estimate (1527)
// close to the true frequency (1575.1, within ~3%).
//
// Expected shape here: the same M_i column, the same table layout, and an
// estimate within tens of percent of the true frequency (this loop is the
// hard, fully-saturated case the paper discusses).

#include "bench/bench_util.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig7_frequency_copy: frequency estimation of the copy loop",
              "Figure 7 (Section 6.1.3)");

  WorkloadFactory factory(/*scale=*/1.0);
  Workload workload = factory.McCalpin(StreamKernel::kCopy);
  RunSpec spec;
  spec.mode = ProfilingMode::kCycles;
  spec.period_scale = 1.0 / 16;
  spec.free_profiling = true;
  RunOutput run = RunProfiled(workload, spec);

  auto image = workload.processes[0].images[0];
  Result<ProcedureAnalysis> analysis =
      AnalyzeFromSystem(*run.system, *image, "mccalpin_copy");
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", analysis.status().ToString().c_str());
    return 1;
  }

  const ImageTruth* truth = run.system->kernel().ground_truth().FindImage(image.get());

  TextTable table;
  table.SetHeader({"addr", "instruction", "S_i", "M_i", "S_i/M_i", "true count"});
  double estimated_freq = 0;
  double true_freq = 0;
  for (const InstructionAnalysis& ia : analysis.value().instructions) {
    // Print the unrolled loop body only (the hot block).
    if (ia.frequency < analysis.value().total_frequency / 50) continue;
    uint64_t index = (ia.pc - image->text_base()) / kInstrBytes;
    uint64_t true_count = truth->instructions[index].exec_count;
    char addr[16];
    std::snprintf(addr, sizeof(addr), "%06llx", static_cast<unsigned long long>(ia.pc));
    std::string ratio = ia.m > 0 ? TextTable::Fixed(static_cast<double>(ia.samples) /
                                                        static_cast<double>(ia.m),
                                                    0)
                                 : "";
    table.AddRow({addr, Disassemble(ia.inst, ia.pc), std::to_string(ia.samples),
                  std::to_string(ia.m), ratio, std::to_string(true_count)});
    estimated_freq = ia.frequency;
    true_freq = static_cast<double>(true_count);
  }
  table.Print();

  double period = run.system->counters(0)->MeanPeriod(EventType::kCycles);
  std::printf("\nsampling period: %.0f cycles\n", period);
  std::printf("estimated frequency (executions): %.0f\n", estimated_freq);
  std::printf("true frequency (executions):      %.0f\n", true_freq);
  std::printf("relative error: %+.1f%%  (paper: 1527 vs 1575.1 = -3.1%%)\n",
              100.0 * (estimated_freq - true_freq) / true_freq);
  return 0;
}
