// Section 6.2: how estimate accuracy scales with the number of profiled
// runs, and the analysis cost.
//
// Paper: aggregating 80 runs instead of 1 moves gcc's within-5% share from
// 23% to 53% (integer suite overall: 54% to 70%), but the stubborn -15%
// bucket barely shrinks (classes whose issue points always stall). The
// analysis itself took ~3 minutes for 17 programs.
//
// Expected shape here: accuracy improves monotonically with aggregated
// runs, with diminishing returns, and the analysis wall time is reported.

#include <chrono>

#include "bench/accuracy_util.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_sec62_estimate_accuracy: accuracy vs profiled runs",
              "Section 6.2");

  const int kRunCounts[] = {1, 4, 8};
  for (int runs : kRunCounts) {
    // Aggregate profiles from `runs` runs by re-running with different
    // seeds into one daemon? Simpler and equivalent: run the workload with
    // a proportionally denser sampling period (the estimate quality depends
    // on total samples gathered).
    AccuracyCollector collector;
    WorkloadFactory factory(/*scale=*/0.4, /*seed=*/1);
    Workload workload = factory.SpecIntLike();
    RunSpec spec;
    spec.mode = ProfilingMode::kCycles;
    spec.period_scale = 1.0 / (4.0 * runs);
    spec.free_profiling = true;
    RunOutput run = RunProfiled(workload, spec);

    auto start = std::chrono::steady_clock::now();
    CollectAccuracy(*run.system, /*min_samples=*/100, &collector);
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

    std::printf("samples equivalent to %d run(s): within 5%% = %5.1f%%, "
                "within 10%% = %5.1f%%, within 15%% = %5.1f%%  "
                "(analysis took %.2fs)\n",
                runs, 100.0 * collector.instr_overall.FractionWithin(5),
                100.0 * collector.instr_overall.FractionWithin(10),
                100.0 * collector.instr_overall.FractionWithin(15), elapsed.count());
  }
  std::printf("\npaper: integer suite 54%% -> 70%% within 5%% going from 1 to 80 runs;\n");
  std::printf("the persistent error bucket (always-stalled classes) does not shrink\n");
  return 0;
}
