// Table 2: description of workloads.
//
// Paper: a descriptive table of the measured workloads (SPEC95, x11perf,
// McCalpin, AltaVista, DSS, parallel SPECfp, timesharing) with machine
// configuration and base running times. Here we print our synthetic
// equivalents, their process/CPU structure, and measured base runtimes in
// simulated cycles (mean +/- 95% CI over repeated runs, like the paper's
// "mean base runtime" column).

#include "bench/bench_util.h"
#include "src/support/stats.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_table2_workloads: workload suite and base runtimes",
              "Table 2 (Section 5)");

  constexpr int kRepeats = 2;
  TextTable table;
  table.SetHeader({"workload", "cpus", "procs", "mean base cycles (95% CI)",
                   "instructions", "description"});

  for (size_t w = 0;; ++w) {
    WorkloadFactory probe(/*scale=*/0.25, /*seed=*/1);
    std::vector<Workload> suite = probe.Table2Suite();
    if (w >= suite.size()) break;
    RunningStat stat;
    uint64_t instructions = 0;
    std::string name, desc;
    uint32_t cpus = 1;
    size_t procs = 0;
    for (int r = 0; r < kRepeats; ++r) {
      WorkloadFactory factory(/*scale=*/0.25, /*seed=*/static_cast<uint64_t>(r + 1));
      Workload workload = factory.Table2Suite()[w];
      name = workload.name;
      desc = workload.description;
      cpus = std::max(1u, workload.num_cpus);
      procs = workload.processes.size();
      RunSpec spec;
      spec.kernel_seed = static_cast<uint64_t>(r + 1) * 31;
      RunOutput out = RunProfiled(workload, spec);
      stat.Add(static_cast<double>(out.result.elapsed_cycles));
      instructions = out.result.instructions;
    }
    table.AddRow({name, std::to_string(cpus), std::to_string(procs),
                  TextTable::WithCi(stat.mean(), stat.ci95_halfwidth(), 0),
                  std::to_string(instructions), desc});
  }
  table.Print();
  std::printf("\n(scale 0.25 of default iteration counts; simulated 333 MHz machine)\n");
  return 0;
}
