// Multiprocessor collection scaling: aggregate sample throughput of the
// threaded per-CPU collection path at 1/2/4/8 simulated CPUs.
//
// The paper's driver keeps all collection state per-CPU precisely so that
// throughput scales with processors (AltaVista on 10-processor machines).
// Here each simulated CPU runs its own workload shard and delivers samples
// into its own driver slot with no locking while the daemon drain thread
// concurrently consumes published buffers — so aggregate samples per unit
// of simulated machine time should scale ~linearly with the CPU count.
//
// The headline column is samples per simulated second (the machine-level
// collection rate; 333 MHz Alpha clock). Host wall-clock throughput is
// reported as a secondary column — on a single-core host the worker
// threads time-share one core, so wall-clock scaling only appears on
// multi-core hosts.

#include <chrono>

#include "bench/bench_util.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

namespace {
constexpr double kClockHz = 333e6;  // the paper's AlphaStation generation
}

int main() {
  PrintHeader("bench_mp_scaling: per-CPU collection throughput vs CPU count",
              "Section 4.2 (per-processor data, synchronization-free handler)");

  double baseline_sim_rate = 0.0;
  double rate_at_4 = 0.0;

  TextTable table;
  table.SetHeader({"cpus", "samples", "sim cycles", "samples/sim-sec",
                   "scaling", "host ms", "samples/host-sec"});
  for (uint32_t cpus : {1u, 2u, 4u, 8u}) {
    WorkloadFactory factory(/*scale=*/0.1, /*seed=*/1);
    Workload workload = factory.ParallelSpecFp(cpus);

    SystemConfig config;
    config.kernel.num_cpus = cpus;
    config.mode = ProfilingMode::kDefault;
    config.period_scale = 1.0 / 32;  // dense sampling for a short run
    config.free_profiling = true;
    config.daemon_drain_interval = 2'000'000;
    System system(config);
    Status status = workload.Instantiate(&system);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
      return 1;
    }
    auto host_start = std::chrono::steady_clock::now();
    SystemResult result = system.Run();
    double host_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start)
            .count();
    if (result.had_error) {
      std::fprintf(stderr, "FATAL: workload error at %u cpus\n", cpus);
      return 1;
    }

    uint64_t samples = 0;
    for (int e = 0; e < kNumEventTypes; ++e) samples += result.samples[e];
    double sim_sec = static_cast<double>(result.elapsed_cycles) / kClockHz;
    double sim_rate = sim_sec > 0 ? static_cast<double>(samples) / sim_sec : 0;
    if (baseline_sim_rate == 0.0) baseline_sim_rate = sim_rate;
    if (cpus == 4) rate_at_4 = sim_rate;
    char scaling[32];
    std::snprintf(scaling, sizeof(scaling), "%.2fx", sim_rate / baseline_sim_rate);
    table.AddRow({std::to_string(cpus), std::to_string(samples),
                  std::to_string(result.elapsed_cycles), TextTable::Fixed(sim_rate, 0),
                  scaling, TextTable::Fixed(host_sec * 1e3, 1),
                  TextTable::Fixed(host_sec > 0 ? samples / host_sec : 0, 0)});
  }
  table.Print();

  double speedup_at_4 = rate_at_4 / baseline_sim_rate;
  std::printf("\naggregate collection rate at 4 CPUs: %.2fx the 1-CPU rate %s\n",
              speedup_at_4, speedup_at_4 >= 2.0 ? "(PASS: >= 2x)" : "(FAIL: < 2x)");
  std::printf("per-CPU hash tables + buffer pairs: no cross-CPU cache-line "
              "sharing, no locks in DeliverSample\n");
  return speedup_at_4 >= 2.0 ? 0 : 1;
}
