// Figure 8: distribution of errors in instruction frequencies, weighted by
// CYCLES samples.
//
// Paper: over the SPEC95 suite, 73% of samples have frequency estimates
// within 5% of the instrumented execution counts, 87% within 10%, 92%
// within 15%; nearly all estimates off by more than 15% are marked low
// confidence.
//
// Expected shape here: a histogram strongly peaked around 0 error, a clear
// majority within 10-15%, and the far tails dominated by low-confidence
// estimates.

#include "bench/accuracy_util.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader(
      "bench_fig8_freq_error_histogram: instruction frequency estimate errors",
      "Figure 8 (Section 6.2)");

  AccuracyCollector collector;
  for (Workload& workload : AccuracySuite(/*scale=*/0.5, /*seed=*/1)) {
    RunSpec spec;
    spec.mode = ProfilingMode::kDefault;
    spec.period_scale = 1.0 / 16;
    spec.free_profiling = true;
    RunOutput run = RunProfiled(workload, spec);
    CollectAccuracy(*run.system, /*min_samples=*/200, &collector);
  }

  std::printf("procedures analyzed: %llu (skipped %llu with too few samples)\n\n",
              static_cast<unsigned long long>(collector.procedures_analyzed),
              static_cast<unsigned long long>(collector.procedures_skipped));
  PrintHistogram("instruction-frequency error histogram (weight: CYCLES samples)",
                 collector.instr_by_conf, collector.instr_overall);
  std::printf("\npaper: 73%% within 5%%, 87%% within 10%%, 92%% within 15%%\n");

  // Shape check: the >15% tails should be mostly low-confidence.
  double tail_total = 0, tail_low = 0;
  const ErrorHistogram& overall = collector.instr_overall;
  const ErrorHistogram& low = collector.instr_by_conf[static_cast<int>(Confidence::kLow)];
  tail_total = (1.0 - overall.FractionWithin(15)) * overall.total_weight();
  tail_low = (1.0 - low.FractionWithin(15)) * low.total_weight();
  if (tail_total > 0) {
    std::printf("share of >15%% errors carrying low confidence: %.0f%%\n",
                100.0 * tail_low / tail_total);
  }
  return 0;
}
