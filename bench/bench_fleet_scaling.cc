// Fleet-scale collection and analysis: aggregate ingest throughput and
// whole-fleet analysis wall-time as the number of simulated hosts grows.
//
// A fleet run is N independent collection pipelines (one simulated host
// each, distinct sampling seeds) writing one database shard apiece under
// <root>/host_<i> — the layout FleetView and the --fleet tools read. This
// bench runs N in {1, 4, 8} (smoke: {1, 2}) concurrent host threads and
// measures:
//   - aggregate ingest: serialized profile bytes the daemons flushed
//     (DaemonStats::db_bytes_written, which counts re-flushes the way a
//     real ingest pipeline would) summed over hosts, divided by the
//     collection wall-clock — the profile traffic rate the fleet
//     sustains. Absolute numbers are small: compact profile databases
//     are the point (Section 8's ~10 MB/day/host budget).
//   - analysis wall-time: AnalyzeDatabase over every shard, cold (empty
//     result caches) and warm (second pass over the same epochs). The warm
//     pass must be pure cache hits: per-epoch caches make re-analyzing a
//     fleet pay only for epochs that are new since the last pass.
//
// Gate (always on — it is a correctness property, not a perf threshold):
// the warm pass has cache_hits > 0 and cache_misses == 0 on every shard,
// and every shard sealed the expected number of epochs.
//
// Emits machine-readable BENCH_fleet.json in the working directory.
// --smoke shrinks the run to seconds-scale (CI / sanitizer jobs).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/engine.h"
#include "src/profiledb/fleet.h"
#include "src/sim/system.h"
#include "src/workloads/workloads.h"

using namespace dcpi;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct HostRun {
  uint64_t db_bytes_written = 0;
  uint64_t samples = 0;
  bool failed = false;
  std::vector<std::shared_ptr<const ExecutableImage>> images;
};

// One host's collection pipeline: `segments` sealed epochs of the workload
// with continuous-operation flushing, written to its own shard.
HostRun RunHost(const Workload& workload, const std::string& db_root,
                int segments, uint32_t seed) {
  Workload instance = workload;
  SystemConfig config;
  config.kernel.num_cpus = 1;
  config.mode = ProfilingMode::kCycles;
  config.period_scale = 1.0 / 16;
  config.db_root = db_root;
  config.rng_seed = seed;
  config.daemon_flush_interval = config.daemon_drain_interval / 4;
  System system(config);

  HostRun run;
  for (int segment = 0; segment < segments; ++segment) {
    Status status = instance.Instantiate(&system);
    if (!status.ok()) {
      run.failed = true;
      return run;
    }
    SystemResult result = system.Run();
    if (result.had_error) {
      run.failed = true;
      return run;
    }
    run.samples += result.samples[static_cast<int>(EventType::kCycles)];
    run.db_bytes_written = result.daemon.db_bytes_written;
    if (segment + 1 < segments && !system.RollEpoch().ok()) {
      run.failed = true;
      return run;
    }
  }
  if (!system.SealCurrentEpoch().ok()) run.failed = true;
  for (const ImageTruth& truth : system.kernel().ground_truth().images()) {
    run.images.push_back(truth.image);
  }
  return run;
}

struct FleetResult {
  int hosts = 0;
  double collect_wall_ms = 0;
  uint64_t total_bytes = 0;
  double ingest_bytes_s = 0;
  double analysis_cold_ms = 0;
  double analysis_warm_ms = 0;
  uint64_t warm_hits = 0;
  uint64_t warm_misses = 0;
  bool gate_ok = false;
};

FleetResult RunFleet(int hosts, int segments, const Workload& workload,
                     const std::string& root) {
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  // Collection: N concurrent hosts, one shard each.
  std::vector<HostRun> runs(hosts);
  auto collect_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(hosts);
  for (int h = 0; h < hosts; ++h) {
    threads.emplace_back([&, h] {
      runs[h] = RunHost(workload, root + "/host_" + std::to_string(h), segments,
                        static_cast<uint32_t>(1 + h));
    });
  }
  for (std::thread& t : threads) t.join();

  FleetResult result;
  result.hosts = hosts;
  result.collect_wall_ms = MsSince(collect_start);
  bool ok = true;
  for (const HostRun& run : runs) {
    ok = ok && !run.failed;
    result.total_bytes += run.db_bytes_written;
  }
  result.ingest_bytes_s =
      result.collect_wall_ms > 0
          ? static_cast<double>(result.total_bytes) /
                (result.collect_wall_ms / 1000.0)
          : 0;

  // Analysis: every shard, cold caches then warm. The fleet view opens the
  // shards read-only the way the --fleet tools do.
  FleetView fleet(root);
  ok = ok && fleet.num_hosts() == static_cast<size_t>(hosts);
  AnalysisConfig config;
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t hits = 0, misses = 0;
    auto pass_start = std::chrono::steady_clock::now();
    for (size_t h = 0; h < fleet.num_hosts(); ++h) {
      const ProfileDatabase& shard = fleet.host(h);
      ok = ok && shard.ListSealedEpochs().size() == static_cast<size_t>(segments);
      AnalysisEngine engine;
      DatabaseAnalysis analysis =
          engine.AnalyzeDatabase(shard, runs[h].images, config);
      hits += analysis.cache_hits;
      misses += analysis.cache_misses;
      ok = ok && !analysis.merged.empty();
    }
    double pass_ms = MsSince(pass_start);
    if (pass == 0) {
      result.analysis_cold_ms = pass_ms;
    } else {
      result.analysis_warm_ms = pass_ms;
      result.warm_hits = hits;
      result.warm_misses = misses;
    }
  }
  // The warm pass must be served entirely from the per-epoch caches.
  result.gate_ok = ok && result.warm_hits > 0 && result.warm_misses == 0;

  std::filesystem::remove_all(root);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_fleet_scaling [--smoke]\n");
      return 2;
    }
  }

  const std::string root = "/tmp/dcpi_bench_fleet";
  const int segments = smoke ? 2 : 3;
  const std::vector<int> fleet_sizes = smoke ? std::vector<int>{1, 2}
                                             : std::vector<int>{1, 4, 8};
  WorkloadFactory factory(/*scale=*/smoke ? 0.25 : 0.5);
  Workload workload = factory.SpecIntLike();

  std::vector<FleetResult> results;
  bool ok = true;
  std::printf("fleet scaling (%d sealed epoch(s) per host)\n", segments);
  for (int hosts : fleet_sizes) {
    FleetResult r = RunFleet(hosts, segments, workload, root);
    ok = ok && r.gate_ok;
    std::printf(
        "  N=%d: ingest %7.2f KiB/s (%llu bytes in %7.1f ms), analysis cold "
        "%7.1f ms, warm %7.1f ms (%llu hit(s), %llu miss(es)) %s\n",
        r.hosts, r.ingest_bytes_s / 1024.0,
        static_cast<unsigned long long>(r.total_bytes), r.collect_wall_ms,
        r.analysis_cold_ms, r.analysis_warm_ms,
        static_cast<unsigned long long>(r.warm_hits),
        static_cast<unsigned long long>(r.warm_misses),
        r.gate_ok ? "ok" : "FAIL");
    results.push_back(r);
  }
  std::printf("%s: warm analysis passes were pure cache hits on every shard\n",
              ok ? "PASS" : "FAIL");

  std::ofstream json("BENCH_fleet.json");
  json << "{\n"
       << "  \"bench\": \"fleet_scaling\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"segments_per_host\": " << segments << ",\n"
       << "  \"fleets\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const FleetResult& r = results[i];
    json << "    {\"hosts\": " << r.hosts
         << ", \"ingest_bytes_s\": " << r.ingest_bytes_s
         << ", \"db_bytes_written\": " << r.total_bytes
         << ", \"collect_wall_ms\": " << r.collect_wall_ms
         << ", \"analysis_cold_ms\": " << r.analysis_cold_ms
         << ", \"analysis_warm_ms\": " << r.analysis_warm_ms
         << ", \"warm_cache_hits\": " << r.warm_hits
         << ", \"warm_cache_misses\": " << r.warm_misses
         << ", \"gate_ok\": " << (r.gate_ok ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"gate_passed\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  return ok ? 0 : 1;
}
