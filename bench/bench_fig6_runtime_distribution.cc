// Figure 6: distribution of running times under base/cycles/default/mux.
//
// Paper: scatter plots for AltaVista, gcc, and wave5 across the four
// configurations; AltaVista shows small overhead and low variance, gcc
// shows a visible (4-10%) profiling overhead, wave5's run-to-run variance
// exceeds the profiling overhead (an apparent speedup in some runs).
//
// Expected shape here: per-workload run distributions (normalized to the
// base mean) where AltaVista-like clusters tightly near 100%, gcc sits
// visibly above its base, and the wave5-like workload's spread from page
// colouring swamps the overhead.

#include "bench/bench_util.h"
#include "src/support/stats.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

namespace {

enum class Which { kAltaVista, kGcc, kWave5 };

Workload Make(Which which, uint64_t seed) {
  WorkloadFactory factory(/*scale=*/0.25, seed);
  switch (which) {
    case Which::kAltaVista:
      return factory.AltaVistaLike();
    case Which::kGcc:
      return factory.GccLike(8);
    case Which::kWave5:
      return factory.SpecFpLike();
  }
  return factory.SpecFpLike();
}

}  // namespace

int main() {
  PrintHeader(
      "bench_fig6_runtime_distribution: run-time scatter per configuration",
      "Figure 6 (Section 5.1)");

  constexpr int kRuns = 4;
  const ProfilingMode kModes[] = {ProfilingMode::kBase, ProfilingMode::kCycles,
                                  ProfilingMode::kDefault, ProfilingMode::kMux};
  const Which kTargets[] = {Which::kAltaVista, Which::kGcc, Which::kWave5};
  const char* kNames[] = {"altavista", "gcc", "wave5"};

  for (int t = 0; t < 3; ++t) {
    // Base mean for normalization.
    RunningStat base;
    std::vector<std::vector<double>> samples(4);
    for (int m = 0; m < 4; ++m) {
      for (int r = 0; r < kRuns; ++r) {
        Workload workload = Make(kTargets[t], static_cast<uint64_t>(r + 1));
        RunSpec spec;
        spec.mode = kModes[m];
        spec.kernel_seed = static_cast<uint64_t>(r + 1) * 7919;
        spec.rng_seed = static_cast<uint32_t>(r + 1);
        RunOutput out = RunProfiled(workload, spec);
        double cycles = static_cast<double>(out.result.busy_cycles_with_daemon);
        samples[m].push_back(cycles);
        if (m == 0) base.Add(cycles);
      }
    }
    std::printf("%s (normalized to base mean; paper plots 90%%..135%%)\n", kNames[t]);
    TextTable table;
    table.SetHeader({"config", "runs (% of base mean)", "mean%", "ci95"});
    for (int m = 0; m < 4; ++m) {
      RunningStat stat;
      std::string list;
      for (double cycles : samples[m]) {
        double pct = 100.0 * cycles / base.mean();
        stat.Add(pct);
        if (!list.empty()) list += " ";
        list += TextTable::Fixed(pct, 1);
      }
      table.AddRow({ProfilingModeName(kModes[m]), list, TextTable::Fixed(stat.mean(), 1),
                    TextTable::Fixed(stat.ci95_halfwidth(), 1)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
