// Whole-epoch analysis scaling: the AnalysisEngine fanning checked
// per-procedure analysis over every (image, procedure) pair of an epoch,
// and the content-addressed result cache skipping all of it on a re-run.
//
// The paper's bargain (Section 6) is cheap collection paid for by heavy
// offline analysis; this bench measures the two levers that keep the
// offline half usable at fleet scale: parallel fan-out (--jobs) and
// incremental re-analysis (the .cache directory).
//
// Columns: wall-clock for jobs=1 (no cache), jobs=4 (no cache), a cold
// cache-populating run, and a warm re-run. Gates:
//   - warm re-run >= 10x over the jobs=1 baseline (always enforced)
//   - jobs=4 >= 3x over jobs=1 (enforced only when the host has >= 4
//     cores; on smaller hosts the workers time-share and the ratio is
//     meaningless, so it is reported but not gated)
// Results must be byte-identical across every configuration.
//
// Also emits machine-readable BENCH_analysis_scaling.json in the working
// directory. --smoke shrinks the workload to seconds-scale sizes (CI /
// sanitizer runs): correctness checks stay, perf gates are skipped.

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/engine.h"
#include "src/check/selfcheck.h"
#include "src/isa/assembler.h"
#include "src/profiledb/database.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

namespace {

// Synthesizes a branchy program: `procs` procedures, each an inner loop
// over `diamonds` if/else diamonds, called round-robin from main. The
// diamond chains put every procedure in the size range where the checked
// analysis does its full work — in particular the O(E^2) cycle-equivalence
// differential oracle, which is the expensive verification dcpicheck pays
// for per procedure and the cache memoizes (at ~20 diamonds a procedure is
// ~200 instructions, comfortably inside the oracle's 250-edge window).
std::string HeavyProgram(int procs, int diamonds, int rounds, int inner) {
  std::string s = "        .text\n        .proc main\n";
  s += "        li    r20, " + std::to_string(rounds) + "\nround:\n";
  for (int p = 0; p < procs; ++p) {
    s += "        bsr   r26, p" + std::to_string(p) + "\n";
  }
  s += "        subq  r20, 1, r20\n        bne   r20, round\n        halt\n"
       "        .endp\n";
  for (int p = 0; p < procs; ++p) {
    const std::string pn = "p" + std::to_string(p);
    s += "        .proc " + pn + "\n";
    s += "        li    r9, " + std::to_string(inner) + "\n" + pn + "_top:\n";
    for (int d = 0; d < diamonds; ++d) {
      const std::string dn = pn + "_d" + std::to_string(d);
      s += "        addq  r1, 1, r1\n"
           "        and   r1, 1, r2\n"
           "        addq  r3, 1, r3\n"
           "        subq  r3, 1, r4\n"
           "        addq  r4, 2, r5\n"
           "        beq   r2, " + dn + "_b\n"
           "        addq  r5, 1, r6\n"
           "        br    r31, " + dn + "_j\n" +
           dn + "_b: subq  r5, 1, r6\n" +
           dn + "_j: addq  r6, 0, r7\n";
    }
    s += "        subq  r9, 1, r9\n        bne   r9, " + pn + "_top\n"
         "        ret   r31, (r26)\n        .endp\n";
  }
  return s;
}

struct EngineRun {
  double ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<std::vector<uint8_t>> result_bytes;  // identity fingerprint
  size_t procedures = 0;
};

EngineRun RunEngine(const std::vector<AnalysisInput>& inputs,
                    const AnalysisConfig& config, int jobs,
                    const std::string& cache_dir) {
  EngineOptions options;
  options.jobs = jobs;
  options.cache_dir = cache_dir;
  options.analyze = [](const ExecutableImage& image, const ProcedureSymbol& proc,
                       const ImageProfile& cycles, const ImageProfile* imiss,
                       const ImageProfile* dmiss, const ImageProfile* branchmp,
                       const ImageProfile* dtbmiss, const AnalysisConfig& cfg,
                       AnalysisScratch* scratch) {
    return AnalyzeProcedureChecked(image, proc, cycles, imiss, dmiss, branchmp,
                                   dtbmiss, cfg, scratch);
  };
  AnalysisEngine engine(options);
  auto start = std::chrono::steady_clock::now();
  EpochAnalysis epoch = engine.AnalyzeAll(inputs, config);
  EngineRun run;
  run.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start)
               .count();
  run.cache_hits = epoch.cache_hits;
  run.cache_misses = epoch.cache_misses;
  run.procedures = epoch.procedures.size();
  for (const ProcedureResult& r : epoch.procedures) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "FATAL: %s/%s: %s\n", r.image_name.c_str(),
                   r.proc.name.c_str(), r.status.ToString().c_str());
      std::exit(1);
    }
    run.result_bytes.push_back(SerializeProcedureAnalysis(r.analysis));
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_analysis_scaling [--smoke]\n");
      return 2;
    }
  }

  PrintHeader("bench_analysis_scaling: whole-epoch parallel analysis + result cache",
              "Section 6 analysis suite at fleet scale (ROADMAP: fast as the "
              "hardware allows)");

  const std::string root = "/tmp/dcpi_bench_analysis_scaling";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  // Several distinct images, each with a fan of procedures, so the engine
  // has a real whole-epoch (image, procedure) task list.
  const int images = smoke ? 2 : 4;
  const int procs = smoke ? 4 : 8;
  const int diamonds = smoke ? 6 : 20;
  Workload workload;
  workload.name = "analysis_heavy";
  workload.description = "branchy procedures sized for full checked analysis";
  for (int i = 0; i < images; ++i) {
    const std::string name = "heavy" + std::to_string(i);
    Result<std::shared_ptr<ExecutableImage>> image =
        Assemble(name, 0x0100'0000 + static_cast<uint64_t>(i) * 0x0100'0000,
                 HeavyProgram(procs, diamonds, /*rounds=*/smoke ? 2 : 4,
                              /*inner=*/smoke ? 8 : 16));
    if (!image.ok()) {
      std::fprintf(stderr, "FATAL: assemble %s: %s\n", name.c_str(),
                   image.status().ToString().c_str());
      return 1;
    }
    workload.processes.push_back({name, {image.value()}, "main"});
  }
  RunSpec spec;
  spec.mode = ProfilingMode::kDefault;  // CYCLES + event profiles
  spec.period_scale = 1.0 / 16;
  spec.free_profiling = true;
  spec.db_root = root + "/db";
  RunOutput run = RunProfiled(workload, spec);
  const uint32_t epoch = run.system->database()->current_epoch();

  // Assemble the epoch's AnalysisInputs the way the tools do: every image
  // with a CYCLES profile, event profiles attached when present.
  ProfileDatabase db(spec.db_root);
  struct Slot {
    std::shared_ptr<ExecutableImage> image;
    std::optional<ImageProfile> profiles[kNumEventTypes];
  };
  std::vector<std::unique_ptr<Slot>> slots;
  for (const ProcessSpec& process : workload.processes) {
    for (const auto& image : process.images) {
      bool seen = false;
      for (const auto& slot : slots) seen = seen || slot->image == image;
      if (seen) continue;
      auto slot = std::make_unique<Slot>();
      slot->image = image;
      for (int e = 0; e < kNumEventTypes; ++e) {
        Result<ImageProfile> profile =
            db.ReadProfile(epoch, image->name(), static_cast<EventType>(e));
        if (profile.ok()) slot->profiles[e] = std::move(profile.value());
      }
      if (slot->profiles[0].has_value()) slots.push_back(std::move(slot));
    }
  }
  std::vector<AnalysisInput> inputs;
  for (const auto& slot : slots) {
    AnalysisInput input;
    input.image = slot->image;
    auto ptr = [&](EventType e) -> const ImageProfile* {
      const auto& p = slot->profiles[static_cast<int>(e)];
      return p.has_value() ? &*p : nullptr;
    };
    input.cycles = ptr(EventType::kCycles);
    input.imiss = ptr(EventType::kImiss);
    input.dmiss = ptr(EventType::kDmiss);
    input.branchmp = ptr(EventType::kBranchMp);
    input.dtbmiss = ptr(EventType::kDtbMiss);
    inputs.push_back(input);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "FATAL: no profiled images in the epoch\n");
    return 1;
  }

  AnalysisConfig config;
  config.selfcheck = true;  // the dcpicheck path: analysis + verification

  const std::string cache_dir = spec.db_root + "/epoch_" + std::to_string(epoch) +
                                "/.cache";
  const int host_threads = ThreadPool::HardwareConcurrency();

  EngineRun jobs1 = RunEngine(inputs, config, 1, /*cache_dir=*/"");
  EngineRun jobs4 = RunEngine(inputs, config, 4, /*cache_dir=*/"");
  EngineRun cold = RunEngine(inputs, config, 1, cache_dir);
  EngineRun warm = RunEngine(inputs, config, 1, cache_dir);

  bool identical = jobs1.result_bytes == jobs4.result_bytes &&
                   jobs1.result_bytes == cold.result_bytes &&
                   jobs1.result_bytes == warm.result_bytes;
  bool warm_all_hits = warm.cache_misses == 0 && warm.cache_hits == warm.procedures;

  double parallel_speedup = jobs4.ms > 0 ? jobs1.ms / jobs4.ms : 0;
  double warm_speedup = warm.ms > 0 ? jobs1.ms / warm.ms : 0;

  TextTable table;
  table.SetHeader({"configuration", "ms", "hits", "misses", "speedup"});
  auto add = [&](const char* name, const EngineRun& r, double speedup) {
    table.AddRow({name, TextTable::Fixed(r.ms, 1), std::to_string(r.cache_hits),
                  std::to_string(r.cache_misses),
                  speedup > 0 ? TextTable::Fixed(speedup, 2) + "x" : "-"});
  };
  add("jobs=1, no cache", jobs1, 0);
  add("jobs=4, no cache", jobs4, parallel_speedup);
  add("jobs=1, cold cache", cold, 0);
  add("jobs=1, warm cache", warm, warm_speedup);
  table.Print();
  std::printf("\nimages: %zu  procedures: %zu  host threads: %d\n", inputs.size(),
              jobs1.procedures, host_threads);
  std::printf("results byte-identical across configurations: %s\n",
              identical ? "yes" : "NO");

  // Gates. Parallel speedup needs real cores; the warm-cache gate does not.
  const bool enforce_parallel = !smoke && host_threads >= 4;
  const bool enforce_warm = !smoke;
  bool pass = identical && warm_all_hits;
  if (!warm_all_hits) {
    std::printf("warm re-run was not served fully from cache (FAIL)\n");
  }
  if (enforce_parallel) {
    std::printf("parallel speedup at 4 threads: %.2fx %s\n", parallel_speedup,
                parallel_speedup >= 3.0 ? "(PASS: >= 3x)" : "(FAIL: < 3x)");
    pass = pass && parallel_speedup >= 3.0;
  } else {
    std::printf("parallel speedup at 4 threads: %.2fx (not gated: %s)\n",
                parallel_speedup,
                smoke ? "--smoke" : "host has < 4 cores, workers time-share");
  }
  if (enforce_warm) {
    std::printf("warm-cache speedup: %.2fx %s\n", warm_speedup,
                warm_speedup >= 10.0 ? "(PASS: >= 10x)" : "(FAIL: < 10x)");
    pass = pass && warm_speedup >= 10.0;
  } else {
    std::printf("warm-cache speedup: %.2fx (not gated: --smoke)\n", warm_speedup);
  }

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"analysis_scaling\",\n"
                "  \"smoke\": %s,\n"
                "  \"host_threads\": %d,\n"
                "  \"images\": %zu,\n"
                "  \"procedures\": %zu,\n"
                "  \"jobs1_ms\": %.3f,\n"
                "  \"jobs4_ms\": %.3f,\n"
                "  \"cold_cache_ms\": %.3f,\n"
                "  \"warm_cache_ms\": %.3f,\n"
                "  \"parallel_speedup\": %.3f,\n"
                "  \"parallel_gate_enforced\": %s,\n"
                "  \"warm_speedup\": %.3f,\n"
                "  \"warm_gate_enforced\": %s,\n"
                "  \"byte_identical\": %s,\n"
                "  \"warm_all_hits\": %s,\n"
                "  \"pass\": %s\n"
                "}\n",
                smoke ? "true" : "false", host_threads, inputs.size(),
                jobs1.procedures, jobs1.ms, jobs4.ms, cold.ms, warm.ms,
                parallel_speedup, enforce_parallel ? "true" : "false", warm_speedup,
                enforce_warm ? "true" : "false", identical ? "true" : "false",
                warm_all_hits ? "true" : "false", pass ? "true" : "false");
  std::ofstream("BENCH_analysis_scaling.json") << json;
  std::printf("\nwrote BENCH_analysis_scaling.json\n");

  std::filesystem::remove_all(root);
  return pass ? 0 : 1;
}
