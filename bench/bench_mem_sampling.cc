// Memory sampling (ProfileMe-style wide records): cost and correctness of
// the --mem-fraction axis the v4 profile format carries.
//
// Three properties are gated (exit 1):
//   1. Off means off: at mem_fraction 0 the wide-sample path contributes
//      zero cycles and zero records, the database holds only pre-v4
//      format versions, and repeated runs write byte-identical trees —
//      running with memory sampling disabled is indistinguishable from a
//      build that never heard of wide records.
//   2. The overhead scales with the knob: raising the fraction never
//      lowers the wide-record count, and a nonzero fraction costs at
//      least as many elapsed cycles as zero (the paper's "overhead
//      proportional to sampling rate" contract, Section 5.2).
//   3. The axis is good for something: on the 4-CPU false-sharing
//      workload the collected data-line counters must flag the planted
//      shared line (>=2 CPUs, >=2 distinct 8-byte slots) and must NOT
//      flag the 64-byte-strided private control lines.
//
// The sweep numbers are written to BENCH_mem_sampling.json. --smoke
// shrinks the workloads and the sweep (CI-sized; all gates still apply).

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/profiledb/memory_profile.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

namespace {

struct SweepPoint {
  double fraction = 0;
  uint64_t elapsed_cycles = 0;
  uint64_t interrupts = 0;
  uint64_t wide_records = 0;      // driver-side bypass records
  uint64_t wide_path_cycles = 0;  // interrupt cycles on the wide path
  uint64_t daemon_wide = 0;       // records the daemon ingested
  uint64_t mem_lines = 0;         // distinct data lines across all profiles
};

SweepPoint RunPoint(double scale, double fraction, const std::string& db_root) {
  WorkloadFactory factory(scale, /*seed=*/1);
  RunSpec spec;
  spec.mode = ProfilingMode::kDefault;
  spec.period_scale = 1.0 / 16;
  spec.mem_fraction = fraction;
  spec.db_root = db_root;
  RunOutput out = RunProfiled(factory.McCalpin(StreamKernel::kCopy), spec);
  SweepPoint point;
  point.fraction = fraction;
  point.elapsed_cycles = out.result.elapsed_cycles;
  point.interrupts = out.result.driver_total.interrupts;
  point.wide_records = out.result.driver_total.wide_records;
  point.wide_path_cycles = out.result.driver_total.wide_path_cycles;
  point.daemon_wide = out.result.daemon.wide_records;
  for (const ImageProfile* profile : out.system->daemon()->AllProfiles()) {
    point.mem_lines += profile->mem().num_lines();
  }
  return point;
}

// Every regular file under `root`, as relative path -> raw bytes.
std::map<std::string, std::vector<uint8_t>> ReadTree(const std::string& root) {
  std::map<std::string, std::vector<uint8_t>> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string rel = std::filesystem::relative(entry.path(), root).string();
    std::ifstream in(entry.path(), std::ios::binary);
    files[rel] = std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_mem_sampling [--smoke]\n");
      return 2;
    }
  }
  PrintHeader("bench_mem_sampling: ProfileMe-style wide-record cost and yield",
              "Section 5.2 overhead contract + the ProfileMe memory axis");

  const double scale = smoke ? 0.1 : 0.3;
  const std::string root = "/tmp/dcpi_bench_mem_sampling";
  std::filesystem::remove_all(root);

  // --- Gate 1: off means off ---
  SweepPoint zero_a = RunPoint(scale, 0.0, root + "/zero_a");
  SweepPoint zero_b = RunPoint(scale, 0.0, root + "/zero_b");
  std::map<std::string, std::vector<uint8_t>> tree_a = ReadTree(root + "/zero_a");
  bool zero_cost_ok = zero_a.wide_records == 0 && zero_a.wide_path_cycles == 0 &&
                      zero_a.daemon_wide == 0 && zero_a.mem_lines == 0 &&
                      zero_a.elapsed_cycles == zero_b.elapsed_cycles;
  bool zero_bytes_ok = !tree_a.empty() && tree_a == ReadTree(root + "/zero_b");
  bool zero_format_ok = true;
  for (const auto& [path, bytes] : tree_a) {
    if (path.find(".prof") == std::string::npos || bytes.size() < 5) continue;
    if (bytes[4] > 3) {
      zero_format_ok = false;
      std::fprintf(stderr, "fraction-0 file %s has version %u\n", path.c_str(),
                   bytes[4]);
    }
  }

  // --- Gate 2: the knob scales the cost ---
  std::vector<double> fractions = smoke ? std::vector<double>{0.25, 1.0}
                                        : std::vector<double>{0.05, 0.25, 1.0};
  std::vector<SweepPoint> sweep = {zero_a};
  for (double fraction : fractions) {
    sweep.push_back(RunPoint(scale, fraction, ""));
  }
  TextTable table;
  table.SetHeader({"fraction", "interrupts", "wide records", "wide-path kcy",
                   "daemon wide", "data lines", "elapsed Mcy"});
  for (const SweepPoint& point : sweep) {
    table.AddRow({TextTable::Fixed(point.fraction, 2),
                  std::to_string(point.interrupts),
                  std::to_string(point.wide_records),
                  TextTable::Fixed(point.wide_path_cycles / 1000.0, 0),
                  std::to_string(point.daemon_wide),
                  std::to_string(point.mem_lines),
                  TextTable::Fixed(point.elapsed_cycles / 1e6, 2)});
  }
  table.Print();
  bool sweep_ok = true;
  for (size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].wide_records < sweep[i - 1].wide_records) sweep_ok = false;
    if (sweep[i].wide_records == 0) sweep_ok = false;
    if (sweep[i].wide_records != sweep[i].daemon_wide) sweep_ok = false;
    if (sweep[i].elapsed_cycles < sweep[0].elapsed_cycles) sweep_ok = false;
  }

  // --- Gate 3: the axis detects the planted false sharing ---
  WorkloadFactory fs_factory(smoke ? 0.25 : 0.5, /*seed=*/1);
  RunSpec fs_spec;
  fs_spec.mode = ProfilingMode::kDefault;
  fs_spec.period_scale = 1.0 / 16;
  fs_spec.mem_fraction = 0.25;
  RunOutput fs = RunProfiled(fs_factory.FalseSharing(), fs_spec);
  uint64_t suspect_lines = 0, private_lines = 0, flagged_private = 0;
  for (const ImageProfile* profile : fs.system->daemon()->AllProfiles()) {
    for (const auto& [line_va, counters] : profile->mem().lines()) {
      bool suspect =
          std::popcount(counters.cpu_mask) >= 2 &&
          std::popcount(static_cast<unsigned>(counters.offset_mask)) >= 2;
      if (suspect) ++suspect_lines;
      if (std::popcount(counters.cpu_mask) == 1) {
        ++private_lines;
        if (suspect) ++flagged_private;
      }
    }
  }
  bool sharing_ok = suspect_lines >= 1 && private_lines >= 1 && flagged_private == 0;
  std::printf("\nfalse-sharing workload: %llu suspect line(s), %llu private "
              "line(s), %llu wrongly flagged\n",
              static_cast<unsigned long long>(suspect_lines),
              static_cast<unsigned long long>(private_lines),
              static_cast<unsigned long long>(flagged_private));

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"mem_sampling\",\n"
                "  \"smoke\": %s,\n"
                "  \"fraction0\": {\"wide_records\": %llu, \"wide_path_cycles\": %llu,\n"
                "                \"elapsed_cycles\": %llu},\n"
                "  \"fraction_full\": {\"wide_records\": %llu, \"wide_path_cycles\": %llu,\n"
                "                    \"elapsed_cycles\": %llu, \"data_lines\": %llu},\n"
                "  \"false_sharing\": {\"suspects\": %llu, \"private\": %llu},\n"
                "  \"gate_fraction0_cost_neutral\": %s,\n"
                "  \"gate_fraction0_byte_identical\": %s,\n"
                "  \"gate_fraction0_pre_v4_format\": %s,\n"
                "  \"gate_sweep_monotone\": %s,\n"
                "  \"gate_false_sharing_detected\": %s\n"
                "}\n",
                smoke ? "true" : "false",
                static_cast<unsigned long long>(zero_a.wide_records),
                static_cast<unsigned long long>(zero_a.wide_path_cycles),
                static_cast<unsigned long long>(zero_a.elapsed_cycles),
                static_cast<unsigned long long>(sweep.back().wide_records),
                static_cast<unsigned long long>(sweep.back().wide_path_cycles),
                static_cast<unsigned long long>(sweep.back().elapsed_cycles),
                static_cast<unsigned long long>(sweep.back().mem_lines),
                static_cast<unsigned long long>(suspect_lines),
                static_cast<unsigned long long>(private_lines),
                zero_cost_ok ? "true" : "false", zero_bytes_ok ? "true" : "false",
                zero_format_ok ? "true" : "false", sweep_ok ? "true" : "false",
                sharing_ok ? "true" : "false");
  std::ofstream("BENCH_mem_sampling.json") << json;
  std::printf("wrote BENCH_mem_sampling.json\n");
  std::filesystem::remove_all(root);

  int failed = 0;
  if (!zero_cost_ok) {
    std::fprintf(stderr, "GATE FAILED: mem_fraction 0 is not cost-neutral\n");
    failed = 1;
  }
  if (!zero_bytes_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: fraction-0 runs wrote differing databases\n");
    failed = 1;
  }
  if (!zero_format_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: fraction-0 database contains v4 profiles\n");
    failed = 1;
  }
  if (!sweep_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: wide-record counts not monotone in the "
                 "fraction (or lost between driver and daemon)\n");
    failed = 1;
  }
  if (!sharing_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: false-sharing line not detected (or a "
                 "private line wrongly flagged)\n");
    failed = 1;
  }
  return failed;
}
