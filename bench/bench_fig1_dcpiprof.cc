// Figure 1: the key procedures from an x11perf run.
//
// Paper: dcpiprof output for an X11 drawing benchmark; ffb8ZeroPolyArc
// dominates (33.87% of cycles), followed by ReadRequestFromClient, with
// kernel (/vmunix) and shared-library procedures interleaved.
//
// Expected shape here: the ffb fill/arc procedures dominate, OS/mi library
// procedures follow, and /vmunix procedures (swtch, in_checksum, idle_loop)
// appear in the listing — whole-system attribution across shared libraries
// and the kernel.

#include "bench/bench_util.h"
#include "src/tools/dcpiprof.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_fig1_dcpiprof: procedure-level listing of an x11perf-like run",
              "Figure 1 (Section 3.1)");

  WorkloadFactory factory(/*scale=*/1.0);
  Workload workload = factory.X11PerfLike();
  RunSpec spec;
  spec.mode = ProfilingMode::kDefault;  // CYCLES + IMISS, as in the figure
  spec.period_scale = 1.0 / 16;
  spec.free_profiling = true;
  RunOutput run = RunProfiled(workload, spec);

  std::vector<ProfInput> inputs = GatherProfInputs(*run.system);
  std::fputs(FormatProcedureListing(ListProcedures(inputs), "imiss").c_str(), stdout);
  std::printf("\nunknown samples: %.3f%% (paper reports ~0.05%% over a week)\n",
              100.0 * run.system->daemon()->UnknownSampleFraction());
  return 0;
}
