// Table 5: daemon space overhead (memory and profile-database disk usage).
//
// Paper: 512 KB of non-pageable kernel memory per CPU (hash table + two
// overflow buffers); daemon resident memory of a few MB growing with the
// number of active processes and images; on-disk profiles of a few hundred
// KB to a few MB, an order of magnitude smaller than the images, growing
// from cycles -> default -> mux as more event types are stored.
//
// Expected shape here: the same 512 KB/CPU kernel footprint, daemon memory
// largest for the many-process workloads, and disk usage increasing with
// the number of monitored events.

// The v2/v3 columns compare the legacy varint encoding against the current
// checksummed format: the CRC32 trailer costs 4 bytes per file, which must
// stay under 1% of the profile bytes.

#include <filesystem>

#include "bench/bench_util.h"
#include "src/profiledb/database.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_table5_space_overhead: daemon memory and profile disk usage",
              "Table 5 (Section 5.3)");

  const ProfilingMode kModes[] = {ProfilingMode::kCycles, ProfilingMode::kDefault,
                                  ProfilingMode::kMux};

  for (ProfilingMode mode : kModes) {
    std::printf("--- configuration: %s ---\n", ProfilingModeName(mode));
    TextTable table;
    table.SetHeader({"workload", "kernel mem/cpu (KB)", "daemon mem (KB)",
                     "disk (KB)", "profiled images", "v2 (KB)", "v3 (KB)",
                     "crc ovh%"});
    size_t num_workloads = WorkloadFactory(0.2).Table2Suite().size();
    for (size_t w = 0; w < num_workloads; ++w) {
      WorkloadFactory factory(/*scale=*/0.2, /*seed=*/1);
      Workload workload = factory.Table2Suite()[w];
      std::string db_root = "/tmp/dcpi_bench_t5_db";
      std::filesystem::remove_all(db_root);
      RunSpec spec;
      spec.mode = mode;
      spec.period_scale = 1.0 / 4;  // denser sampling: short runs, real files
      spec.db_root = db_root;
      RunOutput out = RunProfiled(workload, spec);
      uint64_t kernel_kb = out.system->driver()->KernelMemoryBytesPerCpu() / 1024;
      uint64_t daemon_kb = out.system->daemon()->MemoryUsageBytes() / 1024;
      double disk_kb = static_cast<double>(out.system->database()->DiskUsageBytes()) / 1024.0;
      auto files = out.system->database()->ListProfiles(0);
      size_t num_files = files.ok() ? files.value().size() : 0;
      uint64_t v2_bytes = 0, v3_bytes = 0;
      for (const ImageProfile* profile : out.system->daemon()->AllProfiles()) {
        v2_bytes += SerializeProfileV2(*profile).size();
        v3_bytes += SerializeProfile(*profile).size();
      }
      double crc_overhead_pct =
          v2_bytes > 0
              ? 100.0 * static_cast<double>(v3_bytes - v2_bytes) / v2_bytes
              : 0.0;
      table.AddRow({workload.name, std::to_string(kernel_kb), std::to_string(daemon_kb),
                    TextTable::Fixed(disk_kb, 1), std::to_string(num_files),
                    TextTable::Fixed(v2_bytes / 1024.0, 1),
                    TextTable::Fixed(v3_bytes / 1024.0, 1),
                    TextTable::Percent(crc_overhead_pct, 2)});
      std::filesystem::remove_all(db_root);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("paper: 512 KB/CPU kernel memory; daemon 1.5-11 MB; disk 0.1-6 MB\n\n");

  // Format overhead at realistic profile sizes: the paper's on-disk
  // profiles are hundreds of KB to a few MB (thousands to hundreds of
  // thousands of distinct offsets), where the 4-byte CRC32 trailer is
  // far below 1%. The tiny short-run profiles above overstate it.
  std::printf("--- v2 vs v3 format overhead at representative profile sizes ---\n");
  TextTable fmt_table;
  fmt_table.SetHeader({"distinct offsets", "v1 fixed (KB)", "v2 varint (KB)",
                       "v3 +crc (KB)", "crc ovh%"});
  for (size_t entries : {1000, 10000, 100000}) {
    ImageProfile profile("hot_image", EventType::kCycles, 62000.0);
    for (size_t i = 0; i < entries; ++i) {
      profile.AddSamples(i * 4, 1 + (i * 37) % 500);
    }
    size_t v1 = SerializeProfileFixedWidth(profile).size();
    size_t v2 = SerializeProfileV2(profile).size();
    size_t v3 = SerializeProfile(profile).size();
    fmt_table.AddRow({std::to_string(entries), TextTable::Fixed(v1 / 1024.0, 1),
                      TextTable::Fixed(v2 / 1024.0, 1),
                      TextTable::Fixed(v3 / 1024.0, 1),
                      TextTable::Percent(100.0 * (v3 - v2) / v2, 3)});
  }
  fmt_table.Print();
  std::printf("v3 adds a 4-byte CRC32 trailer per profile file: overhead <1%%\n");
  return 0;
}
