// Table 5: daemon space overhead (memory and profile-database disk usage).
//
// Paper: 512 KB of non-pageable kernel memory per CPU (hash table + two
// overflow buffers); daemon resident memory of a few MB growing with the
// number of active processes and images; on-disk profiles of a few hundred
// KB to a few MB, an order of magnitude smaller than the images, growing
// from cycles -> default -> mux as more event types are stored.
//
// Expected shape here: the same 512 KB/CPU kernel footprint, daemon memory
// largest for the many-process workloads, and disk usage increasing with
// the number of monitored events.

#include <filesystem>

#include "bench/bench_util.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_table5_space_overhead: daemon memory and profile disk usage",
              "Table 5 (Section 5.3)");

  const ProfilingMode kModes[] = {ProfilingMode::kCycles, ProfilingMode::kDefault,
                                  ProfilingMode::kMux};

  for (ProfilingMode mode : kModes) {
    std::printf("--- configuration: %s ---\n", ProfilingModeName(mode));
    TextTable table;
    table.SetHeader({"workload", "kernel mem/cpu (KB)", "daemon mem (KB)",
                     "disk (KB)", "profiled images"});
    size_t num_workloads = WorkloadFactory(0.2).Table2Suite().size();
    for (size_t w = 0; w < num_workloads; ++w) {
      WorkloadFactory factory(/*scale=*/0.2, /*seed=*/1);
      Workload workload = factory.Table2Suite()[w];
      std::string db_root = "/tmp/dcpi_bench_t5_db";
      std::filesystem::remove_all(db_root);
      RunSpec spec;
      spec.mode = mode;
      spec.period_scale = 1.0 / 4;  // denser sampling: short runs, real files
      spec.db_root = db_root;
      RunOutput out = RunProfiled(workload, spec);
      uint64_t kernel_kb = out.system->driver()->KernelMemoryBytesPerCpu() / 1024;
      uint64_t daemon_kb = out.system->daemon()->MemoryUsageBytes() / 1024;
      double disk_kb = static_cast<double>(out.system->database()->DiskUsageBytes()) / 1024.0;
      auto files = out.system->database()->ListProfiles(0);
      size_t num_files = files.ok() ? files.value().size() : 0;
      table.AddRow({workload.name, std::to_string(kernel_kb), std::to_string(daemon_kb),
                    TextTable::Fixed(disk_kb, 1), std::to_string(num_files)});
      std::filesystem::remove_all(db_root);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("paper: 512 KB/CPU kernel memory; daemon 1.5-11 MB; disk 0.1-6 MB\n");
  return 0;
}
