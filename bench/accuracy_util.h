// Shared machinery for the estimate-accuracy experiments (Figures 8 and 9,
// Section 6.2): runs the analyzer over every procedure of a workload's
// images and compares frequency estimates against the simulator's exact
// execution counts (our dcpix).

#ifndef BENCH_ACCURACY_UTIL_H_
#define BENCH_ACCURACY_UTIL_H_

#include <map>

#include "bench/bench_util.h"
#include "src/support/stats.h"

namespace dcpi {
namespace bench {

struct AccuracyCollector {
  // Histograms per confidence level (index by Confidence), weighted by
  // CYCLES samples for instructions / edge executions for edges.
  ErrorHistogram instr_by_conf[4];
  ErrorHistogram instr_overall;
  ErrorHistogram edge_by_conf[4];
  ErrorHistogram edge_overall;
  uint64_t procedures_analyzed = 0;
  uint64_t procedures_skipped = 0;
};

// Analyzes every procedure with at least `min_samples` CYCLES samples in
// every image of the run and accumulates estimate-vs-truth errors.
inline void CollectAccuracy(System& system, uint64_t min_samples,
                            AccuracyCollector* collector) {
  const GroundTruth& gt = system.kernel().ground_truth();
  for (const ImageTruth& truth : gt.images()) {
    const ImageProfile* cycles =
        system.daemon()->FindProfile(truth.image->name(), EventType::kCycles);
    if (cycles == nullptr) continue;
    for (const ProcedureSymbol& proc : truth.image->procedures()) {
      uint64_t proc_samples = 0;
      for (uint64_t off = proc.start - truth.image->text_base();
           off < proc.end - truth.image->text_base(); off += kInstrBytes) {
        proc_samples += cycles->SamplesAt(off);
      }
      if (proc_samples < min_samples) {
        ++collector->procedures_skipped;
        continue;
      }
      AnalysisConfig config;
      Result<ProcedureAnalysis> analysis = AnalyzeProcedure(
          *truth.image, proc, *cycles,
          system.daemon()->FindProfile(truth.image->name(), EventType::kImiss),
          nullptr, nullptr, nullptr, config);
      if (!analysis.ok()) {
        ++collector->procedures_skipped;
        continue;
      }
      ++collector->procedures_analyzed;

      // ---- Instruction frequency errors (weighted by CYCLES samples) ----
      for (const InstructionAnalysis& ia : analysis.value().instructions) {
        uint64_t index = (ia.pc - truth.image->text_base()) / kInstrBytes;
        double true_count = static_cast<double>(truth.instructions[index].exec_count);
        if (true_count <= 0 || ia.samples == 0) continue;
        double error = 100.0 * (ia.frequency - true_count) / true_count;
        double weight = static_cast<double>(ia.samples);
        collector->instr_overall.Add(error, weight);
        collector->instr_by_conf[static_cast<int>(ia.confidence)].Add(error, weight);
      }

      // ---- Edge frequency errors (weighted by true edge executions) ----
      const Cfg& cfg = analysis.value().cfg;
      uint64_t image_base = truth.image->text_base();
      for (const CfgEdge& edge : cfg.edges()) {
        if (edge.from < 0 || edge.to < 0) continue;  // virtual endpoints
        const BasicBlock& from = cfg.blocks()[edge.from];
        uint64_t last_pc = from.end_pc - kInstrBytes;
        uint64_t last_index = (last_pc - image_base) / kInstrBytes;
        double true_count;
        if (edge.fallthrough) {
          // Fall-through executions = block executions - taken transfers.
          double exec = static_cast<double>(truth.instructions[last_index].exec_count);
          double taken = 0;
          for (const auto& [key, count] : truth.edges) {
            if (key.first == last_pc - image_base) taken += static_cast<double>(count);
          }
          true_count = exec - taken;
        } else {
          auto it = truth.edges.find(
              {last_pc - image_base, cfg.blocks()[edge.to].start_pc - image_base});
          true_count = it == truth.edges.end() ? 0.0 : static_cast<double>(it->second);
        }
        if (true_count <= 0) continue;
        double estimate = analysis.value().frequencies.edge_freq[edge.id];
        double error = 100.0 * (estimate - true_count) / true_count;
        collector->edge_overall.Add(error, true_count);
        collector->edge_by_conf[static_cast<int>(
            analysis.value().frequencies.edge_conf[edge.id])]
            .Add(error, true_count);
      }
    }
  }
}

inline void PrintHistogram(const char* title, const ErrorHistogram* by_conf,
                           const ErrorHistogram& overall) {
  std::printf("%s\n", title);
  std::printf("%8s  %8s  %8s  %8s  %8s\n", "bucket", "low%", "medium%", "high%",
              "total%");
  for (size_t b = 0; b < overall.num_buckets(); ++b) {
    double total_weight = overall.total_weight();
    auto share = [&](const ErrorHistogram& h) {
      return total_weight == 0
                 ? 0.0
                 : h.BucketPercent(b) * h.total_weight() / total_weight;
    };
    std::printf("%8s  %8.2f  %8.2f  %8.2f  %8.2f\n", overall.BucketLabel(b).c_str(),
                share(by_conf[static_cast<int>(Confidence::kLow)]),
                share(by_conf[static_cast<int>(Confidence::kMedium)]),
                share(by_conf[static_cast<int>(Confidence::kHigh)]),
                overall.BucketPercent(b));
  }
  std::printf("within  5%%: %5.1f%%\n", 100.0 * overall.FractionWithin(5));
  std::printf("within 10%%: %5.1f%%\n", 100.0 * overall.FractionWithin(10));
  std::printf("within 15%%: %5.1f%%\n", 100.0 * overall.FractionWithin(15));
}

// The accuracy-study suite (SPEC-flavoured mix).
inline std::vector<Workload> AccuracySuite(double scale, uint64_t seed) {
  WorkloadFactory factory(scale, seed);
  std::vector<Workload> suite;
  suite.push_back(factory.SpecIntLike());
  suite.push_back(factory.SpecFpLike());
  suite.push_back(factory.X11PerfLike());
  suite.push_back(factory.McCalpin(StreamKernel::kTriad));
  suite.push_back(factory.BranchHeavy());
  suite.push_back(factory.IcacheStress());
  return suite;
}

}  // namespace bench
}  // namespace dcpi

#endif  // BENCH_ACCURACY_UTIL_H_
