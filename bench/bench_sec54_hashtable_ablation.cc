// Section 5.4: trace-driven exploration of driver hash-table designs.
//
// Paper: replaying sample traces through a hash-table simulator shows that
// (1) increasing associativity from 4-way to 6-way and (2) replacing the
// mod-counter victim policy with swap-to-front (insert at the line head)
// would cut total collection overhead by 10-20%.
//
// Expected shape here: the same ordering — 6-way beats 4-way, swap-to-front
// beats mod-counter, and the combination gives the lowest miss rate and
// modelled handler cost.

#include "bench/bench_util.h"
#include "src/driver/driver.h"
#include "src/support/rng.h"
#include "src/support/text_table.h"

using namespace dcpi;
using namespace dcpi::bench;

int main() {
  PrintHeader("bench_sec54_hashtable_ablation: hash-table design space",
              "Section 5.4");

  // Build a gcc-shaped trace workload directly: a flat sweep over a few
  // hundred generated procedures under several PIDs, sampled densely, so
  // the (PID, PC) key universe is comparable to the 16K-entry table with a
  // few samples per key — the regime where the paper's gcc measurements
  // live (38-44% miss rate) and where replacement/associativity choices
  // matter. An x11 run adds the hit-heavy traffic of a normal workload.
  std::vector<SampleKey> trace;
  {
    WorkloadFactory factory(/*scale=*/1.0, /*seed=*/1);
    std::string source =
        "        .text\n        .proc main\n        li r20, 4\nround:\n";
    for (int p = 0; p < 200; ++p) {
      source += "        bsr r26, pass_" + std::to_string(p) + "\n";
    }
    source += "        subq r20, 1, r20\n        bne r20, round\n        halt\n"
              "        .endp\n";
    SplitMix64 rng(99);
    for (int p = 0; p < 200; ++p) {
      std::string label = "pass_" + std::to_string(p);
      source += "        .proc " + label + "\n        li r1, " +
                std::to_string(p + 2) + "\n        li r2, 40\n" + label + "_l:\n";
      for (int i = 0; i < 30; ++i) {
        switch (rng.NextBelow(3)) {
          case 0:
            source += "        addq r1, " + std::to_string(1 + rng.NextBelow(7)) +
                      ", r1\n";
            break;
          case 1:
            source += "        xor r1, " + std::to_string(1 + rng.NextBelow(200)) +
                      ", r1\n";
            break;
          default:
            source += "        srl r1, 1, r3\n        addq r1, r3, r1\n";
            break;
        }
      }
      source += "        subq r2, 1, r2\n        bne r2, " + label +
                "_l\n        ret r31, (r26)\n        .endp\n";
    }
    std::shared_ptr<ExecutableImage> image = factory.Build("flatcc", source);
    Workload flat;
    flat.name = "flatcc";
    for (int i = 0; i < 8; ++i) {
      flat.processes.push_back({"cc_" + std::to_string(i), {image}, "main"});
    }
    WorkloadFactory x11_factory(/*scale=*/1.0, /*seed=*/2);
    Workload x11 = x11_factory.X11PerfLike();
    for (Workload* workload : {&flat, &x11}) {
      SystemConfig config;
      config.kernel.num_cpus = std::max(1u, workload->num_cpus);
      config.mode = ProfilingMode::kCycles;
      config.period_scale = 1.0 / 512;
      // Trace recording only needs the sample *keys*; charging handler cost
      // at this density would make the machine do nothing but interrupts.
      config.free_profiling = true;
      config.driver.record_trace = true;
      System system(config);
      Status status = workload->Instantiate(&system);
      if (!status.ok()) return 1;
      system.Run();
      const std::vector<SampleKey> t = system.driver()->Trace();
      trace.insert(trace.end(), t.begin(), t.end());
    }
  }
  std::printf("recorded trace: %zu samples\n\n", trace.size());

  struct Variant {
    const char* name;
    HashTableConfig config;
  };
  auto make = [](uint32_t associativity, Replacement replacement, HashKind hash) {
    HashTableConfig config;
    // The paper's 6-way packs more entries into each per-processor cache
    // line, which "would also increase the total number of entries in the
    // hash table": bucket count stays 4096, capacity grows with ways.
    config.associativity = associativity;
    config.replacement = replacement;
    config.hash = hash;
    return config;
  };
  // The first row is the paper's measured baseline — exactly the driver's
  // selectable legacy configuration — and the "6-way, swap-to-front" row
  // is exactly HashTableConfig{}, the configuration the driver now ships
  // by default. Both run through the real SampleHashTable and the driver's
  // shared ModelledCostPerSample (no bench-local cost model), so this
  // table measures the shipped implementations, not copies of them.
  const Variant kVariants[] = {
      {"4-way, mod-counter (1997 shipped)", HashTableConfig::Legacy()},
      {"6-way, mod-counter",
       make(6, Replacement::kModCounter, HashKind::kMultiplicative)},
      {"4-way, swap-to-front",
       make(4, Replacement::kSwapToFront, HashKind::kMultiplicative)},
      {"6-way, swap-to-front (default)", HashTableConfig{}},
      {"4-way, mod-counter, xor-fold hash",
       make(4, Replacement::kModCounter, HashKind::kXorFold)},
      {"2-way, mod-counter",
       make(2, Replacement::kModCounter, HashKind::kMultiplicative)},
      {"8-way, swap-to-front",
       make(8, Replacement::kSwapToFront, HashKind::kMultiplicative)},
  };

  // The driver's own interrupt cost model (hit vs miss handler cycles).
  DriverConfig cost_model;
  double baseline_cost = 0;
  double default_cost = 0;

  TextTable table;
  table.SetHeader({"design", "entries", "miss rate", "evictions", "probe depth",
                   "modelled cost (cy/sample)", "vs 1997"});
  for (const Variant& variant : kVariants) {
    SampleHashTable sim(variant.config);
    for (const SampleKey& key : trace) sim.Record(key);
    const HashTableStats& stats = sim.stats();
    double cost = ModelledCostPerSample(cost_model, stats);
    if (baseline_cost == 0) baseline_cost = cost;
    if (variant.config.associativity == HashTableConfig{}.associativity &&
        variant.config.replacement == HashTableConfig{}.replacement &&
        variant.config.hash == HashTableConfig{}.hash) {
      default_cost = cost;
    }
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%", 100.0 * (cost - baseline_cost) /
                                                       baseline_cost);
    table.AddRow({variant.name,
                  std::to_string(variant.config.buckets *
                                 variant.config.associativity),
                  TextTable::Percent(100.0 * stats.MissRate(), 1),
                  std::to_string(stats.evictions),
                  TextTable::Fixed(stats.AvgProbeDepth(), 2),
                  TextTable::Fixed(cost, 0), delta});
  }
  table.Print();
  std::printf("\npaper: 6-way + swap-to-front reduce overall system cost by 10-20%%\n");
  if (default_cost > baseline_cost) {
    std::fprintf(stderr,
                 "GATE FAILED: shipped default costs %.0f cy/sample vs 1997's %.0f\n",
                 default_cost, baseline_cost);
    return 1;
  }
  std::printf("gate passed: shipped default (%.0f cy/sample) <= 1997 baseline (%.0f)\n",
              default_cost, baseline_cost);
  return 0;
}
