#!/usr/bin/env bash
# Negative tests for the concurrency-correctness gates (run via ctest).
#
#   compile <repo-root>
#       The seeded GUARDED_BY violation in
#       tests/wthread_negative/guarded_by_violation.cc must FAIL to
#       compile under `clang++ -Wthread-safety -Werror=thread-safety`. To
#       guarantee a failure can only come from the analysis, the file is
#       first compiled WITHOUT the flag and must succeed. Exits 77 (ctest
#       skip) when clang++ is not installed — -Wthread-safety needs Clang.
#
#   rank <binary>
#       The seeded lock-rank inversion binary must abort with the
#       lock-hierarchy checker's message naming both locks. Exits 77 when
#       the binary reports the checker is compiled out.

set -u

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

[[ $# -eq 2 ]] || fail "usage: $0 {compile <repo-root> | rank <binary>}"
mode="$1"

case "$mode" in
  compile)
    root="$2"
    cxx=$(command -v clang++ || true)
    if [[ -z "$cxx" ]]; then
      echo "SKIP: clang++ not installed (-Wthread-safety is Clang-only)"
      exit 77
    fi
    src="$root/tests/wthread_negative/guarded_by_violation.cc"
    log=$(mktemp)
    trap 'rm -f "$log"' EXIT
    if ! "$cxx" -std=c++20 -fsyntax-only -I "$root" "$src" 2>"$log"; then
      cat "$log" >&2
      fail "seeded file does not compile even without -Wthread-safety"
    fi
    if "$cxx" -std=c++20 -fsyntax-only -Wthread-safety \
        -Werror=thread-safety -I "$root" "$src" 2>"$log"; then
      fail "seeded GUARDED_BY violation compiled under -Werror=thread-safety"
    fi
    grep -q "thread-safety" "$log" ||
      { cat "$log" >&2; fail "compile failed for a non-thread-safety reason"; }
    grep -q "value_" "$log" ||
      { cat "$log" >&2; fail "diagnostic does not name the unguarded field"; }
    echo "PASS: seeded violation rejected by -Wthread-safety"
    ;;
  rank)
    binary="$2"
    log=$(mktemp)
    trap 'rm -f "$log"' EXIT
    "$binary" >"$log" 2>&1
    status=$?
    if [[ "$status" -eq 77 ]]; then
      echo "SKIP: lock-rank checker compiled out"
      exit 77
    fi
    [[ "$status" -ne 0 ]] ||
      { cat "$log" >&2; fail "seeded rank inversion did not abort"; }
    grep -q "lock rank violation" "$log" ||
      { cat "$log" >&2; fail "abort did not come from the rank checker"; }
    grep -q "seeded.low" "$log" && grep -q "seeded.high" "$log" ||
      { cat "$log" >&2; fail "checker message does not name both locks"; }
    echo "PASS: seeded rank inversion aborted with both lock names"
    ;;
  *)
    fail "unknown mode '$mode'"
    ;;
esac
