#!/usr/bin/env bash
# Sanitizer gate for the multiprocessor collection path and the
# crash-safety fault-injection tests.
#
# Builds two extra configurations and runs the test suite under each:
#   build-tsan  - ThreadSanitizer: the lock-free driver handoff, the daemon
#                 drain thread, and the per-CPU worker threads must be
#                 data-race-free (the paper's "no synchronization needed"
#                 claim, enforced).
#   build-asan  - AddressSanitizer + UndefinedBehaviorSanitizer: the full
#                 suite, including the profile-database crash/corruption
#                 tests (ProfileDbCrash*, DeserializeAdversarial*), so the
#                 fault-injection and corrupt-input paths run sanitized.
#
# New/rewritten targets build with -Werror (wired in the CMakeLists); any
# warning in them fails the build and therefore this script.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--wthread-only] [--fast]
#                         [--lint] [--wthread] [--bench-smoke]
#   --fast runs only the concurrency-relevant tests under TSan and the
#   crash/corruption/durability tests under ASan (the full suites are slow
#   on small hosts).
#   --lint additionally runs clang-tidy (config in .clang-tidy) over the
#   compile-commands database. Skipped with a notice when clang-tidy is not
#   installed, so the gate stays usable on minimal containers.
#   --wthread additionally builds build-wthread with clang++ and
#   -Wthread-safety -Werror=thread-safety (the static lock-discipline
#   gate: every GUARDED_BY/REQUIRES contract in src/ is compiler-checked)
#   and runs the negative compile test. Skipped with a notice when clang++
#   is not installed (same pattern as --lint). --wthread-only runs just
#   that gate.
#   --bench-smoke additionally runs bench_analysis_scaling --smoke,
#   bench_continuous --smoke, bench_fleet_scaling --smoke,
#   bench_table4_overhead_components --smoke, and bench_mem_sampling
#   --smoke in each sanitized build, so the parallel analysis engine, its
#   result cache, the continuous epoch-roll path, the fleet shard
#   collection + merge-on-read path, the Section 5.4 collection hot path
#   (6-way swap-to-front table + batched daemon ingest vs the 1997
#   baseline, with its miss-path/daemon-cost gates), and the wide-record
#   memory-sampling path (fraction-0 neutrality + false-sharing detection
#   gates) are exercised end-to-end under TSan/ASan (tiny sizes).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc)
RUN_TSAN=1
RUN_ASAN=1
FAST=0
LINT=0
WTHREAD=0
BENCH_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --tsan-only) RUN_ASAN=0 ;;
    --asan-only) RUN_TSAN=0 ;;
    --wthread-only) RUN_TSAN=0; RUN_ASAN=0; WTHREAD=1 ;;
    --fast) FAST=1 ;;
    --lint) LINT=1 ;;
    --wthread) WTHREAD=1 ;;
    --bench-smoke) BENCH_SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

run_lint() {
  local tidy
  tidy=$(command -v clang-tidy || true)
  if [[ -z "$tidy" ]]; then
    echo "=== lint skipped: clang-tidy not installed ==="
    return 0
  fi
  echo "=== configuring build-lint (compile-commands database) ==="
  cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "=== running clang-tidy ==="
  local failed=0
  while IFS= read -r file; do
    "$tidy" -p build-lint --quiet "$file" || failed=1
  done < <(find src -name '*.cc' | sort)
  if [[ "$failed" != 0 ]]; then
    echo "=== lint failed ===" >&2
    return 1
  fi
  echo "=== lint passed ==="
}

run_wthread() {
  local cxx
  cxx=$(command -v clang++ || true)
  if [[ -z "$cxx" ]]; then
    echo "=== wthread skipped: clang++ not installed (-Wthread-safety is Clang-only) ==="
    return 0
  fi
  echo "=== configuring build-wthread (clang++, -Wthread-safety -Werror=thread-safety) ==="
  # The thread-safety flags are added automatically for Clang by the
  # top-level CMakeLists; selecting clang++ is what arms them.
  cmake -B build-wthread -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="$cxx" >/dev/null
  echo "=== building build-wthread (any thread-safety warning is an error) ==="
  cmake --build build-wthread -j "$JOBS"
  echo "=== wthread negative tests (seeded violations must be caught) ==="
  ctest --test-dir build-wthread --output-on-failure \
    -R 'WthreadNegative|LockHierarchy'
  echo "=== wthread gate passed ==="
}

if [[ "$LINT" == 1 ]]; then
  run_lint
fi

if [[ "$WTHREAD" == 1 ]]; then
  run_wthread
fi

run_config() {
  local dir="$1" flags="$2" filter="$3"
  echo "=== configuring $dir ($flags) ==="
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$flags" >/dev/null
  echo "=== building $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== testing $dir ==="
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
  if [[ "$BENCH_SMOKE" == 1 ]]; then
    echo "=== bench smoke ($dir): analysis engine under sanitizers ==="
    (cd "$dir" && ./bench/bench_analysis_scaling --smoke)
    echo "=== bench smoke ($dir): continuous collection under sanitizers ==="
    (cd "$dir" && ./bench/bench_continuous --smoke)
    echo "=== bench smoke ($dir): fleet shards + merge-on-read under sanitizers ==="
    (cd "$dir" && ./bench/bench_fleet_scaling --smoke)
    echo "=== bench smoke ($dir): Section 5.4 before/after gates under sanitizers ==="
    (cd "$dir" && ./bench/bench_table4_overhead_components --smoke)
    echo "=== bench smoke ($dir): wide-record memory sampling under sanitizers ==="
    (cd "$dir" && ./bench/bench_mem_sampling --smoke)
    echo "=== bench smoke ($dir): collection micro head-to-heads under sanitizers ==="
    (cd "$dir" && ./bench/bench_micro_collection \
        --benchmark_filter='Policy|Ingest' --benchmark_min_time=0.01 \
        --benchmark_out=BENCH_micro_collection.json --benchmark_out_format=json)
  fi
}

if [[ "$RUN_TSAN" == 1 ]]; then
  TSAN_FILTER=""
  if [[ "$FAST" == 1 ]]; then
    TSAN_FILTER="DriverConcurrency|MpDeterminism|PipelineIntegration|DcpiDriver|KernelSched|ThreadPool|Engine|Continuous|HashPolicy|DaemonIngest|IngestDb|Fleet|LockHierarchy|WthreadNegative|MemorySection"
  fi
  run_config build-tsan "-fsanitize=thread -O1 -g -fno-omit-frame-pointer" "$TSAN_FILTER"
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  ASAN_FILTER=""
  if [[ "$FAST" == 1 ]]; then
    ASAN_FILTER="ProfileDbCrash|DeserializeAdversarial|MemorySection|AtomicWrite|Crc32|DbTest|BinaryIo|Engine|Continuous|HashPolicy|DaemonIngest|IngestDb|Fleet|LockHierarchy|WthreadNegative"
  fi
  run_config build-asan "-fsanitize=address,undefined -O1 -g -fno-omit-frame-pointer" "$ASAN_FILTER"
fi

echo "=== all sanitizer configurations passed ==="
