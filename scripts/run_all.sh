#!/bin/sh
# Regenerates every paper table/figure and the test log (README workflow).
set -x
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
