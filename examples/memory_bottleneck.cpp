// Instruction-level bottleneck hunting, the Section 3.2 walkthrough:
// profile the McCalpin copy loop, show dcpicalc's annotated listing and
// stall summary, then apply the fix the analysis suggests (shrink the
// working set so it fits the board cache) and measure the speedup.
//
// Build & run:  ./build/examples/memory_bottleneck

#include <cstdio>

#include "src/tools/dcpicalc.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

using namespace dcpi;

namespace {

// The Figure 2 copy loop over a configurable working set.
std::string CopyProgram(uint64_t elements) {
  std::string source = R"(
        .text
        .proc copy_kernel
        li    r9, %OUTER%
outer:
        lia   r1, src_arr
        lia   r2, dst_arr
        li    r0, 0
        li    r3, %N%
copy_loop:
        ldq   r4, 0(r1)
        addq  r0, 4, r0
        ldq   r5, 8(r1)
        ldq   r6, 16(r1)
        ldq   r7, 24(r1)
        lda   r1, 32(r1)
        stq   r4, 0(r2)
        cmpult r0, r3, r4
        stq   r5, 8(r2)
        stq   r6, 16(r2)
        stq   r7, 24(r2)
        lda   r2, 32(r2)
        bne   r4, copy_loop
        subq  r9, 1, r9
        bne   r9, outer
        halt
        .endp
        .data
        .align 8192
src_arr: .space %BYTES%
dst_arr: .space %BYTES%
)";
  auto replace = [&source](const std::string& key, uint64_t value) {
    std::string token = "%" + key + "%";
    size_t pos;
    while ((pos = source.find(token)) != std::string::npos) {
      source.replace(pos, token.size(), std::to_string(value));
    }
  };
  // Keep total work constant: more outer passes when the array is smaller.
  replace("OUTER", (512 * 1024 / elements) * 2);
  replace("N", elements);
  replace("BYTES", elements * 8);
  return source;
}

struct RunOutcome {
  uint64_t cycles;
  std::unique_ptr<System> system;
  std::shared_ptr<ExecutableImage> image;
};

RunOutcome RunCopy(const std::string& name, uint64_t elements) {
  RunOutcome outcome;
  Result<std::shared_ptr<ExecutableImage>> image =
      Assemble(name, 0x0100'0000, CopyProgram(elements));
  outcome.image = image.value();
  SystemConfig config;
  config.mode = ProfilingMode::kDefault;
  config.period_scale = 1.0 / 32;
  outcome.system = std::make_unique<System>(config);
  (void)outcome.system->AddProcess(name, {outcome.image}, "copy_kernel");
  outcome.cycles = outcome.system->Run().elapsed_cycles;
  return outcome;
}

}  // namespace

int main() {
  // Step 1: profile the memory-bound version (8 MB working set, far bigger
  // than the 2 MB board cache).
  std::printf("== Profiling the copy loop over an 8 MB working set ==\n\n");
  RunOutcome slow = RunCopy("copy_slow", 512 * 1024);

  Result<ProcedureAnalysis> analysis =
      AnalyzeFromSystem(*slow.system, *slow.image, "copy_kernel");
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::fputs(FormatCalcListing(*slow.image, analysis.value()).c_str(), stdout);
  std::printf("\n-- stall summary --\n");
  std::fputs(FormatStallSummary(analysis.value()).c_str(), stdout);

  // Step 2: the listing blames the stores (write buffer + D-cache misses
  // feeding them). Apply cache blocking: same total work, 128 KB tiles.
  std::printf("\n== After blocking the copy into 128 KB tiles ==\n\n");
  RunOutcome fast = RunCopy("copy_fast", 16 * 1024);

  Result<ProcedureAnalysis> fast_analysis =
      AnalyzeFromSystem(*fast.system, *fast.image, "copy_kernel");
  std::fputs(FormatStallSummary(fast_analysis.value()).c_str(), stdout);

  std::printf("\ncycles before: %llu\ncycles after:  %llu\nspeedup:       %.2fx\n",
              static_cast<unsigned long long>(slow.cycles),
              static_cast<unsigned long long>(fast.cycles),
              static_cast<double>(slow.cycles) / static_cast<double>(fast.cycles));
  return 0;
}
