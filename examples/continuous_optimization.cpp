// Continuous optimization (Section 7): close the loop the paper describes —
// profile a running system, feed the profile into a post-link optimizer
// (profile-guided procedure reordering, the Spike/OM starting move), and
// run the optimized binary.
//
// The workload interleaves a few hot procedures among many cold ones so
// the hot set conflicts in the direct-mapped I-cache; packing hot
// procedures together removes the conflicts.
//
// Build & run:  ./build/examples/continuous_optimization

#include <cstdio>

#include "src/optimize/layout.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

using namespace dcpi;

namespace {

// 48 procedures, each padded to exactly 1 KB (256 instructions). Every
// 8th procedure is hot, so in the original layout all six hot procedures
// share the same direct-mapped 8 KB I-cache region and evict each other on
// every call. Packed together by the optimizer they occupy 6 KB and fit.
std::string BuildProgram() {
  std::string source = "        .text\n        .proc main\n        li r20, 400\nround:\n";
  for (int p = 0; p < 48; p += 8) {
    source += "        bsr r26, proc_" + std::to_string(p) + "\n";
  }
  source +=
      "        subq r20, 1, r20\n        bne r20, round\n"
      "        li r21, 2\ncold_round:\n";
  for (int p = 0; p < 48; ++p) {
    if (p % 8 != 0) source += "        bsr r26, proc_" + std::to_string(p) + "\n";
  }
  source += "        subq r21, 1, r21\n        bne r21, cold_round\n        halt\n"
            "        .endp\n        .align 1024\n";
  for (int p = 0; p < 48; ++p) {
    source += "        .proc proc_" + std::to_string(p) + "\n";
    source += "        li r1, " + std::to_string(p + 1) + "\n";  // 2 instructions
    for (int i = 0; i < 253; ++i) {
      source += "        addq r1, " + std::to_string((i % 5) + 1) + ", r1\n";
    }
    source += "        ret r31, (r26)\n        .endp\n";  // total: 256 instructions
  }
  return source;
}

struct Outcome {
  uint64_t cycles;
  uint64_t imiss;
  std::unique_ptr<System> system;
};

Outcome Run(std::shared_ptr<ExecutableImage> image) {
  Outcome outcome;
  SystemConfig config;
  config.mode = ProfilingMode::kDefault;
  config.period_scale = 1.0 / 16;
  config.free_profiling = true;
  outcome.system = std::make_unique<System>(config);
  (void)outcome.system->AddProcess("app", {image}, "main");
  SystemResult result = outcome.system->Run();
  outcome.cycles = result.elapsed_cycles;
  outcome.imiss = outcome.system->kernel().cpu(0).memory().icache().stats().misses;
  return outcome;
}

}  // namespace

int main() {
  WorkloadFactory factory(1.0);
  std::shared_ptr<ExecutableImage> image = factory.Build("app", BuildProgram());

  std::printf("== Pass 1: profile the original layout ==\n");
  Outcome before = Run(image);
  std::printf("cycles: %llu   I-cache misses: %llu\n\n",
              static_cast<unsigned long long>(before.cycles),
              static_cast<unsigned long long>(before.imiss));

  const ImageProfile* cycles_profile =
      before.system->daemon()->FindProfile("app", EventType::kCycles);
  if (cycles_profile == nullptr) {
    std::fprintf(stderr, "no profile collected\n");
    return 1;
  }

  std::printf("== Feed the profile into the layout optimizer ==\n");
  Result<std::shared_ptr<ExecutableImage>> optimized =
      ReorderProceduresByHotness(*image, *cycles_profile);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("first procedures after reordering:");
  int shown = 0;
  for (const ProcedureSymbol& proc : optimized.value()->procedures()) {
    std::printf(" %s", proc.name.c_str());
    if (++shown == 6) break;
  }
  std::printf(" ...\n\n");

  std::printf("== Pass 2: run the optimized layout ==\n");
  Outcome after = Run(optimized.value());
  std::printf("cycles: %llu   I-cache misses: %llu\n\n",
              static_cast<unsigned long long>(after.cycles),
              static_cast<unsigned long long>(after.imiss));

  std::printf("speedup: %.2fx   I-cache miss reduction: %.1f%%\n",
              static_cast<double>(before.cycles) / static_cast<double>(after.cycles),
              100.0 * (1.0 - static_cast<double>(after.imiss) /
                                 static_cast<double>(before.imiss)));
  return 0;
}
