// Quickstart: assemble a program, run it on the simulated Alpha with
// continuous profiling enabled, and list where the cycles went.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/isa/assembler.h"
#include "src/tools/dcpiprof.h"
#include "src/tools/toolkit.h"

using namespace dcpi;

// A program with two procedures of very different cost: a cheap counting
// loop and an expensive strided walk over a large array.
constexpr char kProgram[] = R"(
        .text
        .proc main
        li    r9, 40
again:
        bsr   r26, count_loop
        bsr   r26, touch_memory
        subq  r9, 1, r9
        bne   r9, again
        halt
        .endp

        .proc count_loop
        li    r1, 2000
spin:
        subq  r1, 1, r1
        bne   r1, spin
        ret   r31, (r26)
        .endp

        .proc touch_memory
        lia   r1, big_array
        li    r2, 4096
walk:
        ldq   r3, 0(r1)
        addq  r3, 1, r3
        stq   r3, 0(r1)
        lda   r1, 512(r1)     # stride past the cache line
        subq  r2, 1, r2
        bne   r2, walk
        ret   r31, (r26)
        .endp

        .data
        .align 8192
big_array: .space 2097152
)";

int main() {
  // 1. Assemble the program into an executable image.
  Result<std::shared_ptr<ExecutableImage>> image =
      Assemble("quickstart", 0x0100'0000, kProgram);
  if (!image.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", image.status().ToString().c_str());
    return 1;
  }

  // 2. Build a profiled system: one CPU, CYCLES+IMISS counters (the paper's
  //    "default" configuration), with a denser-than-default sampling period
  //    so this short run still collects a useful profile.
  SystemConfig config;
  config.mode = ProfilingMode::kDefault;
  config.period_scale = 1.0 / 32;
  System system(config);

  // 3. Create a process running the image and let the kernel schedule it.
  Result<Process*> process = system.AddProcess("quickstart", {image.value()}, "main");
  if (!process.ok()) {
    std::fprintf(stderr, "process creation failed: %s\n",
                 process.status().ToString().c_str());
    return 1;
  }
  SystemResult result = system.Run();

  std::printf("ran %llu instructions in %llu cycles; %llu CYCLES samples collected\n\n",
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(result.elapsed_cycles),
              static_cast<unsigned long long>(
                  result.samples[static_cast<int>(EventType::kCycles)]));

  // 4. Ask dcpiprof where the time went. The memory walker should dominate
  //    even though both procedures are called equally often.
  std::fputs(
      FormatProcedureListing(ListProcedures(GatherProfInputs(system)), "imiss").c_str(),
      stdout);
  return result.had_error ? 1 : 0;
}
