// Whole-system profiling, the Figure 1 scenario: an X-server-like process
// built from several shared libraries, profiled together with the kernel
// (/vmunix) — DCPI's headline ability to profile "all the code", not just
// one application.
//
// Build & run:  ./build/examples/whole_system_profile

#include <cstdio>

#include "src/tools/dcpiprof.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

using namespace dcpi;

int main() {
  WorkloadFactory factory(/*scale=*/0.5);
  Workload workload = factory.X11PerfLike();

  SystemConfig config;
  config.mode = ProfilingMode::kDefault;  // CYCLES + IMISS
  config.period_scale = 1.0 / 32;
  System system(config);
  Status status = workload.Instantiate(&system);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  SystemResult result = system.Run();

  std::printf(
      "x11perf-like run: %llu cycles, %llu instructions, unknown samples %.3f%%\n\n",
      static_cast<unsigned long long>(result.elapsed_cycles),
      static_cast<unsigned long long>(result.instructions),
      100.0 * system.daemon()->UnknownSampleFraction());

  // Per-image view: the server binary, three shared libraries, and the
  // kernel all show up, like the paper's Figure 1.
  std::printf("-- samples by image --\n");
  std::vector<ProfInput> inputs = GatherProfInputs(system);
  std::fputs(FormatImageListing(ListImages(inputs)).c_str(), stdout);

  std::printf("\n-- samples by procedure --\n");
  std::fputs(FormatProcedureListing(ListProcedures(inputs), "imiss").c_str(), stdout);
  return result.had_error ? 1 : 0;
}
