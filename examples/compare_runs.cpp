// Cross-run variance analysis, the Section 3.3 scenario: run the wave5-like
// FP workload several times (each run gets a different random
// virtual-to-physical page colouring, the mechanism the paper suspects for
// wave5's variance) and use dcpistats to find the procedure responsible.
//
// Build & run:  ./build/examples/compare_runs

#include <cstdio>

#include "src/tools/dcpistats.h"
#include "src/tools/toolkit.h"
#include "src/workloads/workloads.h"

using namespace dcpi;

int main() {
  constexpr int kRuns = 6;
  std::vector<ProcedureSamples> sample_sets;
  std::vector<uint64_t> run_cycles;

  for (int run = 0; run < kRuns; ++run) {
    WorkloadFactory factory(/*scale=*/0.3, /*seed=*/run + 1);
    Workload workload = factory.SpecFpLike();
    SystemConfig config;
    config.mode = ProfilingMode::kCycles;
    config.period_scale = 1.0 / 16;
    config.kernel.seed = static_cast<uint64_t>(run + 1) * 7919;  // page colouring
    config.rng_seed = static_cast<uint32_t>(run + 1);
    System system(config);
    Status status = workload.Instantiate(&system);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    SystemResult result = system.Run();
    run_cycles.push_back(result.elapsed_cycles);
    sample_sets.push_back(SamplesByProcedure(system));
    std::printf("run %d: %llu cycles\n", run + 1,
                static_cast<unsigned long long>(result.elapsed_cycles));
  }

  uint64_t min_cycles = run_cycles[0], max_cycles = run_cycles[0];
  for (uint64_t c : run_cycles) {
    min_cycles = std::min(min_cycles, c);
    max_cycles = std::max(max_cycles, c);
  }
  std::printf("\nrun-to-run spread: %.1f%%\n\n",
              100.0 * static_cast<double>(max_cycles - min_cycles) /
                  static_cast<double>(min_cycles));

  // dcpistats: which procedure varies the most across runs?
  std::vector<StatsRow> rows = ComputeStats(sample_sets);
  std::fputs(FormatStats(sample_sets, rows, 10).c_str(), stdout);
  std::printf(
      "\nThe top row is the conflict-prone procedure; its range%% far exceeds the\n"
      "others because its board-cache conflicts depend on the page colouring.\n");
  return 0;
}
